// Package benchfmt is the shared schema of the committed BENCH_<date>.json
// snapshots: the document and benchmark-entry types, the `go test -bench`
// text parser behind cmd/benchjson, and load/merge/write helpers so other
// producers (cmd/magnet-load) can add entries to the same day's document
// instead of inventing a second format.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark result entry.
type Benchmark struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (from the preceding "pkg:"
	// line; empty when the input carries none).
	Pkg string `json:"pkg,omitempty"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the measured run (or the operation count for
	// harness-produced entries like magnet-load's).
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op, and any custom
	// units from b.ReportMetric or a harness.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the BENCH_<date>.json root. GoMaxProcs and NumCPU record
// the machine the run happened on — per-benchmark Procs only captures the
// -cpu suffix, so without these two numbers runs from differently-sized
// hosts are not comparable (the 2026-08-06 snapshot was taken on a
// single-core container, for instance).
type Document struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"numcpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// New returns a document stamped with today's date and this machine's
// runtime facts.
func New() Document {
	return Document{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// FileName returns the conventional snapshot name for the document's date,
// BENCH_<date>.json.
func (d Document) FileName() string { return "BENCH_" + d.Date + ".json" }

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

// Parse reads `go test -bench` text output and returns the benchmark
// entries it contains. Non-benchmark lines are skipped; "pkg:" lines set
// the package of subsequent entries.
func Parse(r io.Reader) ([]Benchmark, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []Benchmark
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1], Pkg: pkg, Procs: 1, Metrics: map[string]float64{}}
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
		}
		b.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// Load reads a snapshot document from path. A missing file returns a fresh
// New() document, so producers can merge into today's snapshot whether or
// not the microbenchmarks ran first.
func Load(path string) (Document, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return New(), nil
	}
	if err != nil {
		return Document{}, err
	}
	var d Document
	if err := json.Unmarshal(b, &d); err != nil {
		return Document{}, err
	}
	return d, nil
}

// Merge appends entries, replacing any existing entry with the same
// (Name, Pkg, Procs) identity so re-runs update in place instead of
// accumulating duplicates.
func (d *Document) Merge(bs ...Benchmark) {
	for _, b := range bs {
		replaced := false
		for i, old := range d.Benchmarks {
			if old.Name == b.Name && old.Pkg == b.Pkg && old.Procs == b.Procs {
				d.Benchmarks[i] = b
				replaced = true
				break
			}
		}
		if !replaced {
			d.Benchmarks = append(d.Benchmarks, b)
		}
	}
}

// Encode writes the document as indented JSON.
func (d Document) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Write atomically writes the document to path (temp file + rename).
func (d Document) Write(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := d.Encode(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

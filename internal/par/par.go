// Package par is Magnet's bounded worker pool: the one place in internal/
// allowed to spawn goroutines (the gohygiene analyzer enforces this). The
// blackboard's analyst waves, the facet summarizer's per-attribute shards
// and the vector store's similarity scans all fan out through it, so the
// whole navigation pipeline shares a single concurrency budget instead of
// oversubscribing the machine when many sessions run at once.
//
// Design: helpers are spawned on demand, bounded by a semaphore of
// size−1 tokens, and the submitting goroutine always participates in its
// own batch (caller-runs). That makes every fan-out deadlock-free under
// nesting — an analyst running on a pool helper may itself call par.Map;
// if no token is free, the inner call simply degrades to a serial loop on
// the helper's own goroutine. A pool of width 1 (or a nil pool) is the
// serial oracle: the same code path, no goroutines, used by the
// equivalence tests.
//
// Tasks are panic-safe: a panicking task is converted to a *PanicError
// returned from Map/ForN/ForChunks (first failure wins), never a crashed
// worker. Context cancellation stops a batch between tasks; completed
// results are kept, unclaimed tasks are skipped, and the context error is
// returned.
//
// Observability (internal/obs): par.pool.size (width of the most recently
// created pool), par.tasks.queued (tasks announced but not yet claimed),
// par.tasks.active (tasks running now), par.task.ns (per-task latency),
// par.task.panics, par.batch.count, par.batch.serial.
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"magnet/internal/obs"
)

// Pool-level observability. Handles are package-level (registry lookups
// must not sit on the task path).
var (
	poolSize    = obs.NewGauge("par.pool.size")
	tasksQueued = obs.NewGauge("par.tasks.queued")
	tasksActive = obs.NewGauge("par.tasks.active")
	taskNS      = obs.NewHistogram("par.task.ns")
	taskPanics  = obs.NewCounter("par.task.panics")
	batchCount  = obs.NewCounter("par.batch.count")
	batchSerial = obs.NewCounter("par.batch.serial")
	// queueWaitNS measures submit→start latency per task: how long a task
	// sat behind the pool's budget (or behind earlier tasks of its own
	// batch) before a goroutine picked it up. Under load this is the
	// signal that separates pool saturation (waits grow, task times flat)
	// from slow tasks (waits flat, task times grow).
	queueWaitNS = obs.NewHistogram("par.queue.wait.ns")
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("par: pool closed")

// PanicError wraps a panic recovered inside a pool task. Callers that need
// the old propagate-the-panic semantics can re-panic with it.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Task is the index of the task that panicked.
	Task int
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v", e.Task, e.Value)
}

// Pool is a bounded concurrency budget. Width is the maximum number of
// goroutines ever working on this pool's batches at once, counting the
// submitting goroutine itself: a batch spawns at most width−1 helpers, and
// only when semaphore tokens are free, so nested fan-outs and concurrent
// sessions share one budget instead of multiplying.
//
// The zero *Pool (nil) is valid and always serial. Pools are safe for
// concurrent use.
type Pool struct {
	size int
	// sem holds the size−1 helper tokens. Acquire = send, release =
	// receive; Close fills the channel to wait out live helpers.
	sem chan struct{}
	// quit unblocks Submit callers waiting for a token when the pool
	// closes.
	quit   chan struct{}
	closed atomic.Bool
}

// New returns a pool of the given width; size <= 0 means
// runtime.GOMAXPROCS(0). A width-1 pool never spawns and is the serial
// oracle used by the equivalence tests.
func New(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		size: size,
		sem:  make(chan struct{}, size-1),
		quit: make(chan struct{}),
	}
	poolSize.Set(int64(size))
	return p
}

// Width returns the pool's concurrency budget (1 for a nil or closed
// pool — i.e. the width the next batch will actually run at).
func (p *Pool) Width() int {
	if p == nil || p.closed.Load() {
		return 1
	}
	return p.size
}

// Close marks the pool closed and waits for live helpers to finish their
// current tasks. Batches already running complete (their submitting
// goroutines drain them); new batches run serially. Close is idempotent
// and safe concurrently with Submit and batch execution.
func (p *Pool) Close() {
	if p == nil || p.closed.Swap(true) {
		return
	}
	close(p.quit)
	// Fill the semaphore: every send is a helper slot that can no longer
	// be taken; once all cap(sem) slots are held the last helper has
	// exited.
	for i := 0; i < cap(p.sem); i++ {
		p.sem <- struct{}{}
	}
}

// Submit runs fn asynchronously on a helper goroutine, blocking while the
// pool is at its budget. On a nil or width-1 pool fn runs synchronously on
// the caller. Panics inside fn are recovered and counted
// (par.task.panics), never propagated. Returns ErrClosed (without running
// fn) once the pool is closed.
func (p *Pool) Submit(fn func()) error {
	if p == nil {
		runTask(0, fn)
		return nil
	}
	if p.closed.Load() {
		return ErrClosed
	}
	if cap(p.sem) == 0 {
		runTask(0, fn)
		return nil
	}
	submitted := time.Now()
	select {
	case p.sem <- struct{}{}:
	case <-p.quit:
		return ErrClosed
	}
	if p.closed.Load() {
		<-p.sem
		return ErrClosed
	}
	go func() {
		defer func() { <-p.sem }()
		queueWaitNS.ObserveSince(submitted)
		runTask(0, fn)
	}()
	return nil
}

// runTask executes one task with timing and panic containment. The
// recovered value, if any, is returned for the batch to record.
func runTask(i int, fn func()) (panicked *PanicError) {
	tasksActive.Add(1)
	start := time.Now()
	defer func() {
		taskNS.ObserveSince(start)
		tasksActive.Add(-1)
		if r := recover(); r != nil {
			taskPanics.Inc()
			panicked = &PanicError{Value: r, Task: i}
		}
	}()
	fn()
	return nil
}

// batch is one fan-out: n index-addressed tasks claimed via an atomic
// cursor by the submitting goroutine and any helpers that join.
type batch struct {
	ctx context.Context
	n   int
	fn  func(int)
	// submitted is when the batch was handed to the pool; each task's
	// claim time minus this is its queue wait.
	submitted time.Time
	next      atomic.Int64
	// stop is set on the first failure (panic or context error); drainers
	// claim no further tasks.
	stop atomic.Bool

	mu sync.Mutex
	// err records the first failure; guarded by mu.
	err error

	// helpers counts live helper goroutines on this batch.
	helpers sync.WaitGroup
}

func (b *batch) fail(err error) {
	b.stop.Store(true)
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

// drain claims and runs tasks until the cursor passes n, the context is
// cancelled, or a task fails.
func (b *batch) drain() {
	for !b.stop.Load() {
		if err := b.ctx.Err(); err != nil {
			b.fail(err)
			return
		}
		i := int(b.next.Add(1)) - 1
		if i >= b.n {
			return
		}
		tasksQueued.Add(-1)
		queueWaitNS.ObserveSince(b.submitted)
		if pe := runTask(i, func() { b.fn(i) }); pe != nil {
			b.fail(pe)
			return
		}
	}
}

// spawnHelpers starts up to max helpers on b, bounded by free semaphore
// tokens. Never blocks.
func (p *Pool) spawnHelpers(b *batch, max int) {
	if p == nil || p.closed.Load() {
		return
	}
	if max > p.size-1 {
		max = p.size - 1
	}
	for i := 0; i < max; i++ {
		select {
		case p.sem <- struct{}{}:
			if p.closed.Load() {
				<-p.sem
				return
			}
			b.helpers.Add(1)
			go func() {
				defer func() {
					<-p.sem
					b.helpers.Done()
				}()
				b.drain()
			}()
		default:
			return
		}
	}
}

// ForN runs fn(0), …, fn(n−1), concurrently when the pool allows, and
// returns after every started task finished. Tasks are index-addressed, so
// writing results into out[i] gives deterministic ordering regardless of
// schedule. Returns the first *PanicError or context error; on error,
// completed tasks keep their effects and unclaimed tasks never run.
func ForN(ctx context.Context, p *Pool, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	batchCount.Inc()
	if n == 1 || p.Width() <= 1 {
		return serialRun(ctx, n, fn)
	}
	b := &batch{ctx: ctx, n: n, fn: fn, submitted: time.Now()}
	tasksQueued.Add(int64(n))
	p.spawnHelpers(b, n-1)
	b.drain()
	b.helpers.Wait()
	if claimed := b.next.Load(); claimed < int64(n) {
		tasksQueued.Add(claimed - int64(n)) // unclaimed after early stop
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// serialRun is the width-1 oracle: the same task wrappers (timing, panic
// containment, cancellation points) on the caller's goroutine, zero
// goroutines spawned.
func serialRun(ctx context.Context, n int, fn func(i int)) error {
	batchSerial.Inc()
	submitted := time.Now()
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		queueWaitNS.ObserveSince(submitted)
		if pe := runTask(i, func() { fn(i) }); pe != nil {
			return pe
		}
	}
	return nil
}

// Map applies fn to every element of in, concurrently when the pool
// allows, and returns the results in input order. On error the returned
// slice holds results only for tasks that completed (zero values
// elsewhere).
func Map[T, R any](ctx context.Context, p *Pool, in []T, fn func(i int, v T) R) ([]R, error) {
	out := make([]R, len(in))
	err := ForN(ctx, p, len(in), func(i int) { out[i] = fn(i, in[i]) })
	return out, err
}

// ForChunks partitions [0, n) into contiguous chunks of the given size
// (the last may be short) and runs fn(lo, hi) per chunk, concurrently when
// the pool allows. The partition depends only on n and chunk — never on
// pool width or schedule — so reductions that merge per-chunk partials in
// chunk order are bit-identical at every width.
func ForChunks(ctx context.Context, p *Pool, n, chunk int, fn func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = 1
	}
	nchunks := (n + chunk - 1) / chunk
	return ForN(ctx, p, nchunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// ChunkFor sizes chunks so n tasks split into about 4 claims per unit of
// pool width — small enough to balance uneven work, large enough to
// amortize per-chunk scratch. With a serial pool it returns n (one chunk:
// identical allocation behavior to a plain loop).
func ChunkFor(p *Pool, n int) int {
	w := p.Width()
	if w <= 1 || n <= 0 {
		return max(n, 1)
	}
	return max(1, (n+4*w-1)/(4*w))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package par

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrder checks Map returns results in input order at every width.
func TestMapOrder(t *testing.T) {
	in := make([]int, 1000)
	for i := range in {
		in[i] = i
	}
	for _, width := range []int{1, 2, 4, 16} {
		p := New(width)
		out, err := Map(context.Background(), p, in, func(i, v int) int { return v * v })
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("width %d: out[%d] = %d, want %d", width, i, v, i*i)
			}
		}
		p.Close()
	}
}

// TestNilPoolSerial checks the nil pool runs everything inline.
func TestNilPoolSerial(t *testing.T) {
	var ran int // no synchronization: serial execution must not race
	err := ForN(context.Background(), nil, 100, func(i int) { ran++ })
	if err != nil || ran != 100 {
		t.Fatalf("ran=%d err=%v", ran, err)
	}
	if got := (*Pool)(nil).Width(); got != 1 {
		t.Fatalf("nil Width = %d", got)
	}
}

// TestSerialParallelEquivalence runs the same reduction at width 1 and
// width 8 and requires identical results (the oracle pattern every
// downstream equivalence test builds on).
func TestSerialParallelEquivalence(t *testing.T) {
	sum := func(p *Pool) []int {
		out := make([]int, 257)
		if err := ForChunks(context.Background(), p, len(out), 10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = 3 * i
			}
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := sum(New(1))
	parallel := sum(New(8))
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("serial and parallel results differ")
	}
}

// TestPanicBecomesError checks a panicking task surfaces as *PanicError
// with the other tasks' effects intact, at serial and parallel widths.
func TestPanicBecomesError(t *testing.T) {
	for _, width := range []int{1, 4} {
		p := New(width)
		var done atomic.Int64
		err := ForN(context.Background(), p, 50, func(i int) {
			if i == 25 {
				panic("boom")
			}
			done.Add(1)
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("width %d: err = %v, want *PanicError", width, err)
		}
		if pe.Value != "boom" || pe.Task != 25 {
			t.Fatalf("width %d: PanicError = %+v", width, pe)
		}
		if done.Load() == 0 || done.Load() > 49 {
			t.Fatalf("width %d: done = %d", width, done.Load())
		}
		p.Close()
	}
}

// TestContextCancelMidWave checks cancellation stops claiming without
// losing completed work or deadlocking.
func TestContextCancelMidWave(t *testing.T) {
	for _, width := range []int{1, 4} {
		p := New(width)
		ctx, cancel := context.WithCancel(context.Background())
		var done atomic.Int64
		err := ForN(ctx, p, 10_000, func(i int) {
			if done.Add(1) == 10 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("width %d: err = %v, want context.Canceled", width, err)
		}
		if n := done.Load(); n < 10 || n == 10_000 {
			t.Fatalf("width %d: done = %d, want partial completion", width, n)
		}
		cancel()
		p.Close()
	}
}

// TestNestedForNNoDeadlock checks caller-runs makes nested fan-out safe
// even when the pool is saturated: every inner batch can be drained by its
// own submitter.
func TestNestedForNNoDeadlock(t *testing.T) {
	p := New(2) // one helper token; inner batches mostly degrade to serial
	defer p.Close()
	var total atomic.Int64
	err := ForN(context.Background(), p, 8, func(i int) {
		inner := ForN(context.Background(), p, 8, func(j int) { total.Add(1) })
		if inner != nil {
			t.Errorf("inner: %v", inner)
		}
	})
	if err != nil || total.Load() != 64 {
		t.Fatalf("total=%d err=%v", total.Load(), err)
	}
}

// TestForChunksPartition checks the partition is exact and fixed by (n,
// chunk) alone.
func TestForChunksPartition(t *testing.T) {
	covered := make([]int, 103)
	err := ForChunks(context.Background(), nil, len(covered), 10, func(lo, hi int) {
		if lo%10 != 0 || (hi != lo+10 && hi != len(covered)) {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

// TestChunkFor pins the sizing contract: one chunk at width 1, about 4
// claims per worker otherwise.
func TestChunkFor(t *testing.T) {
	if got := ChunkFor(nil, 100); got != 100 {
		t.Fatalf("serial ChunkFor = %d, want 100", got)
	}
	p := New(4)
	defer p.Close()
	chunk := ChunkFor(p, 100)
	if chunk < 1 || chunk > 100/8 {
		t.Fatalf("ChunkFor(4, 100) = %d", chunk)
	}
	if got := ChunkFor(p, 0); got != 1 {
		t.Fatalf("ChunkFor(p, 0) = %d, want 1", got)
	}
}

// TestSubmitRunsAndClose checks Submit executes tasks, contains panics,
// and refuses after Close.
func TestSubmitRunsAndClose(t *testing.T) {
	p := New(4)
	var wg sync.WaitGroup
	var ran atomic.Int64
	for i := 0; i < 32; i++ {
		wg.Add(1)
		if err := p.Submit(func() { defer wg.Done(); ran.Add(1) }); err != nil {
			wg.Done()
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	if ran.Load() != 32 {
		t.Fatalf("ran = %d", ran.Load())
	}
	// A panicking submission must not kill the pool.
	wg.Add(1)
	if err := p.Submit(func() { defer wg.Done(); panic("contained") }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wg.Wait()
	p.Close()
	if err := p.Submit(func() { t.Error("ran after Close") }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if p.Width() != 1 {
		t.Fatalf("closed Width = %d, want 1", p.Width())
	}
	p.Close() // idempotent
}

// TestConcurrentSubmitShutdown is the race-detector stress: many
// submitters racing one Close; every Submit either runs its task or
// returns ErrClosed, and Close returns with no helper left running.
func TestConcurrentSubmitShutdown(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := New(4)
		var ran, refused atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					err := p.Submit(func() { ran.Add(1) })
					if errors.Is(err, ErrClosed) {
						refused.Add(1)
					} else if err != nil {
						t.Errorf("Submit: %v", err)
					}
				}
			}()
		}
		time.Sleep(time.Duration(round%3) * time.Millisecond)
		p.Close()
		wg.Wait()
		p.Close()
		if ran.Load()+refused.Load() != 400 {
			t.Fatalf("ran %d + refused %d != 400", ran.Load(), refused.Load())
		}
	}
}

// TestCloseDuringBatch checks Close racing live ForN batches: the batches
// complete fully (the submitter drains what helpers abandon).
func TestCloseDuringBatch(t *testing.T) {
	p := New(8)
	var wg sync.WaitGroup
	var total atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := ForN(context.Background(), p, 1000, func(i int) { total.Add(1) })
			if err != nil {
				t.Errorf("ForN: %v", err)
			}
		}()
	}
	p.Close()
	wg.Wait()
	if total.Load() != 4000 {
		t.Fatalf("total = %d, want 4000", total.Load())
	}
}

// TestConcurrentBatches hammers one pool from many goroutines under -race.
func TestConcurrentBatches(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := make([]int, 200)
			for i := range in {
				in[i] = w*1000 + i
			}
			out, err := Map(context.Background(), p, in, func(i, v int) int { return v + 1 })
			if err != nil {
				t.Errorf("Map: %v", err)
				return
			}
			for i, v := range out {
				if v != in[i]+1 {
					t.Errorf("out[%d] = %d", i, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPanicErrorMessage pins the error text format.
func TestPanicErrorMessage(t *testing.T) {
	pe := &PanicError{Value: "x", Task: 3}
	if got, want := pe.Error(), fmt.Sprintf("par: task %d panicked: %v", 3, "x"); got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}

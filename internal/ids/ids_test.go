package ids

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternStable(t *testing.T) {
	in := NewInterner[string]()
	a := in.Intern("a")
	b := in.Intern("b")
	if a == b {
		t.Fatalf("distinct keys share ID %d", a)
	}
	if got := in.Intern("a"); got != a {
		t.Fatalf("re-Intern(a) = %d, want %d", got, a)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if id, ok := in.Lookup("b"); !ok || id != b {
		t.Fatalf("Lookup(b) = %d,%v", id, ok)
	}
	if _, ok := in.Lookup("c"); ok {
		t.Fatal("Lookup(c) found unknown key")
	}
	if in.Key(a) != "a" || in.Key(b) != "b" {
		t.Fatal("Key round-trip broken")
	}
	if in.Key(99) != "" {
		t.Fatal("Key(unknown) should be zero value")
	}
}

func TestAppendKeys(t *testing.T) {
	in := NewInterner[string]()
	for i := 0; i < 5; i++ {
		in.Intern(fmt.Sprintf("k%d", i))
	}
	got := in.AppendKeys([]string{"pre"}, []uint32{3, 0, 4, 100})
	want := []string{"pre", "k3", "k0", "k4"} // unknown IDs skipped
	if len(got) != len(want) {
		t.Fatalf("AppendKeys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendKeys = %v, want %v", got, want)
		}
	}
}

// TestConcurrentIntern races interning against Lookup/Key/AppendKeys/Len
// from many goroutines; run under -race this verifies the locking protocol.
func TestConcurrentIntern(t *testing.T) {
	in := NewInterner[string]()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	ids := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]uint32, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				// Heavy overlap across workers: every key is interned by
				// several goroutines at once.
				k := fmt.Sprintf("key-%d", i%100)
				id := in.Intern(k)
				ids[w] = append(ids[w], id)
				if got, ok := in.Lookup(k); !ok || got != id {
					t.Errorf("Lookup(%s) = %d,%v after Intern = %d", k, got, ok, id)
					return
				}
				if in.Key(id) != k {
					t.Errorf("Key(%d) = %q, want %q", id, in.Key(id), k)
					return
				}
				_ = in.AppendKeys(nil, ids[w][:min(len(ids[w]), 10)])
				_ = in.Len()
			}
		}(w)
	}
	wg.Wait()
	if in.Len() != 100 {
		t.Fatalf("Len = %d, want 100", in.Len())
	}
	// All workers must agree on every key's ID.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		id, ok := in.Lookup(k)
		if !ok {
			t.Fatalf("key %s lost", k)
		}
		if in.Key(id) != k {
			t.Fatalf("Key(%d) = %q, want %q", id, in.Key(id), k)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package ids

import "testing"

// TestColumnsRoundTrip: a frozen interner rebuilt from Columns must agree
// with the original on every ID, key, and lookup — the contract segment
// serialization depends on.
func TestColumnsRoundTrip(t *testing.T) {
	in := NewInterner[string]()
	keys := []string{"zebra", "", "alpha", "middle", "alpha2", "zz"}
	want := make(map[string]uint32, len(keys))
	for _, k := range keys {
		want[k] = in.Intern(k)
	}

	fr, err := FromColumns[string](in.Columns())
	if err != nil {
		t.Fatalf("FromColumns: %v", err)
	}
	if fr.Len() != in.Len() {
		t.Fatalf("Len = %d, want %d", fr.Len(), in.Len())
	}
	for k, id := range want {
		if got := fr.Key(id); got != k {
			t.Errorf("Key(%d) = %q, want %q", id, got, k)
		}
		if got, ok := fr.Lookup(k); !ok || got != id {
			t.Errorf("Lookup(%q) = %d,%v, want %d,true", k, got, ok, id)
		}
		if got := fr.Intern(k); got != id {
			t.Errorf("Intern(%q) = %d, want %d (frozen Intern of a known key)", k, got, id)
		}
	}
	if _, ok := fr.Lookup("unseen"); ok {
		t.Error("Lookup(unseen) found a key the frozen table never held")
	}
	if got := fr.Key(uint32(len(keys) + 5)); got != "" {
		t.Errorf("Key(out of range) = %q, want zero value", got)
	}
}

// TestFrozenInternPanics: a frozen interner must refuse to mint new IDs.
func TestFrozenInternPanics(t *testing.T) {
	in := NewInterner[string]()
	in.Intern("only")
	fr, err := FromColumns[string](in.Columns())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intern of an unseen key on a frozen interner did not panic")
		}
	}()
	fr.Intern("new-key")
}

// TestFromColumnsValidates: malformed column frames must be rejected.
func TestFromColumnsValidates(t *testing.T) {
	cases := map[string]Columns{
		"off not starting at 0": {Off: []uint32{1, 2}, Blob: []byte("ab"), Sorted: []uint32{0}},
		"off end != blob len":   {Off: []uint32{0, 5}, Blob: []byte("ab"), Sorted: []uint32{0}},
		"sorted wrong length":   {Off: []uint32{0, 1}, Blob: []byte("a"), Sorted: nil},
		"off decreasing":        {Off: []uint32{0, 2, 1}, Blob: []byte("ab"), Sorted: []uint32{0, 1}},
	}
	for name, c := range cases {
		if _, err := FromColumns[string](c); err == nil {
			t.Errorf("%s: FromColumns accepted %+v", name, c)
		}
	}
}

// TestColumnsEmpty: an empty interner round-trips.
func TestColumnsEmpty(t *testing.T) {
	fr, err := FromColumns[string](NewInterner[string]().Columns())
	if err != nil {
		t.Fatalf("FromColumns(empty): %v", err)
	}
	if fr.Len() != 0 {
		t.Errorf("Len = %d, want 0", fr.Len())
	}
	if _, ok := fr.Lookup("x"); ok {
		t.Error("Lookup on empty frozen interner found a key")
	}
}

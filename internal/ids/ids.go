// Package ids implements the dense-ID plane of the navigation engine: an
// append-only interner mapping string-shaped resource identifiers (rdf.IRI,
// text-index document IDs, vector-space coordinate keys) to dense uint32
// item IDs and back.
//
// Dense integer IDs are the representation IR systems actually use for hot
// set algebra — sorted postings and bitmaps over document numbers instead
// of string-keyed hash maps. Every layer of the engine (graph reverse
// index, query sets, facet histograms, vector postings) speaks these IDs
// natively and only rehydrates the original identifiers at the render
// boundary. See DESIGN.md's "ID plane" section for the invariants.
//
// The package is generic over any ~string key so the graph can intern
// rdf.IRI while the indexes intern plain strings without conversions.
package ids

import (
	"fmt"
	"sort"
	"sync"
)

// Interner assigns dense uint32 IDs to keys, append-only: a key's ID never
// changes and IDs are never reused, so slices indexed by ID stay valid
// across later interning. The zero Interner is not ready for use; call
// NewInterner (mutable) or FromColumns (read-only, segment-backed).
//
// Interner is safe for concurrent use: lookups and rehydration may race
// with interning.
type Interner[K ~string] struct {
	mu   sync.RWMutex
	ids  map[K]uint32 // key → dense ID; guarded by mu
	keys []K          // dense ID → key; guarded by mu

	// Read-only columnar backing (see Columns). When cols.Off is non-nil
	// the interner is frozen: lookups binary-search the sorted permutation,
	// Key slices the blob, and Intern panics for unseen keys. Frozen
	// interners take no locks — the columns never change.
	cols Columns
}

// Columns is the serialized form of an interner: the dense-ID→key table as
// an offset/blob string column plus a permutation of IDs sorted by key
// bytes (the binary-search index Lookup uses in frozen mode). Key i spans
// Blob[Off[i]:Off[i+1]]; len(Off) is one more than the key count.
type Columns struct {
	Off    []uint32
	Blob   []byte
	Sorted []uint32
}

// NewInterner returns an empty interner.
func NewInterner[K ~string]() *Interner[K] {
	return &Interner[K]{ids: make(map[K]uint32)}
}

// FromColumns returns a read-only interner over a serialized key table
// (typically slices into an mmapped segment). Construction is O(1): keys
// are rehydrated lazily, per access. Interning a key that is not already
// present panics — frozen interners never grow.
func FromColumns[K ~string](c Columns) (*Interner[K], error) {
	if len(c.Off) == 0 {
		return nil, fmt.Errorf("ids: columns missing offset table")
	}
	n := len(c.Off) - 1
	if len(c.Sorted) != n {
		return nil, fmt.Errorf("ids: sorted permutation has %d entries for %d keys", len(c.Sorted), n)
	}
	if c.Off[0] != 0 || int(c.Off[n]) != len(c.Blob) {
		return nil, fmt.Errorf("ids: offset table does not span blob (%d..%d of %d bytes)", c.Off[0], c.Off[n], len(c.Blob))
	}
	return &Interner[K]{cols: c}, nil
}

// Columns snapshots the interner into its serialized form (the write side
// of FromColumns). The sorted permutation is computed here, O(n log n).
func (in *Interner[K]) Columns() Columns {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.frozen() {
		return in.cols
	}
	var c Columns
	c.Off = make([]uint32, 1, len(in.keys)+1)
	size := 0
	for _, k := range in.keys {
		size += len(k)
	}
	c.Blob = make([]byte, 0, size)
	for _, k := range in.keys {
		c.Blob = append(c.Blob, k...)
		c.Off = append(c.Off, uint32(len(c.Blob)))
	}
	c.Sorted = sortedPerm(len(in.keys), func(i, j int) bool { return in.keys[i] < in.keys[j] })
	return c
}

// frozen reports whether the interner is columnar-backed (read-only).
func (in *Interner[K]) frozen() bool { return in.cols.Off != nil }

// keyBytes returns the raw bytes of key id in frozen mode (nil when out of
// range). The slice aliases the blob; callers must not retain or mutate it.
//
//magnet:hot
func (in *Interner[K]) keyBytes(id uint32) []byte {
	off := in.cols.Off
	if int(id)+1 >= len(off) {
		return nil
	}
	lo, hi := off[id], off[id+1]
	if lo > hi || int(hi) > len(in.cols.Blob) {
		return nil
	}
	return in.cols.Blob[lo:hi]
}

// lookupFrozen binary-searches the sorted permutation for k.
func (in *Interner[K]) lookupFrozen(k K) (uint32, bool) {
	sorted := in.cols.Sorted
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpBytesStr(in.keyBytes(sorted[mid]), string(k)) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(sorted) && cmpBytesStr(in.keyBytes(sorted[lo]), string(k)) == 0 {
		return sorted[lo], true
	}
	return 0, false
}

// cmpBytesStr compares a byte slice against a string without allocating.
//
//magnet:hot
func cmpBytesStr(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// Intern returns the dense ID of k, assigning the next free ID when k is
// new. Frozen interners resolve known keys and panic on unseen ones —
// segment-backed stores are immutable.
func (in *Interner[K]) Intern(k K) uint32 {
	if in.frozen() {
		id, ok := in.lookupFrozen(k)
		if !ok {
			panic(fmt.Sprintf("ids: Intern(%q) on read-only segment-backed interner", string(k)))
		}
		return id
	}
	in.mu.RLock()
	id, ok := in.ids[k]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[k]; ok {
		return id
	}
	id = uint32(len(in.keys))
	in.ids[k] = id
	in.keys = append(in.keys, k)
	return id
}

// Lookup returns the ID of k without interning, and whether k is known.
func (in *Interner[K]) Lookup(k K) (uint32, bool) {
	if in.frozen() {
		return in.lookupFrozen(k)
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.ids[k]
	return id, ok
}

// Key returns the key behind a dense ID. IDs must come from this interner;
// unknown IDs return the zero key.
func (in *Interner[K]) Key(id uint32) K {
	if in.frozen() {
		return K(in.keyBytes(id))
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	if int(id) >= len(in.keys) {
		var zero K
		return zero
	}
	return in.keys[id]
}

// AppendKeys rehydrates every ID in order, appending the keys to dst under
// one lock acquisition (the bulk form render boundaries use).
func (in *Interner[K]) AppendKeys(dst []K, ids []uint32) []K {
	if in.frozen() {
		for _, id := range ids {
			if int(id)+1 < len(in.cols.Off) {
				dst = append(dst, K(in.keyBytes(id)))
			}
		}
		return dst
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	for _, id := range ids {
		if int(id) < len(in.keys) {
			dst = append(dst, in.keys[id])
		}
	}
	return dst
}

// Len returns the number of interned keys; valid IDs are [0, Len).
func (in *Interner[K]) Len() int {
	if in.frozen() {
		return len(in.cols.Off) - 1
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.keys)
}

// sortedPerm returns 0..n-1 sorted by less (build-side only).
func sortedPerm(n int, less func(i, j int) bool) []uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	sort.Slice(perm, func(a, b int) bool { return less(int(perm[a]), int(perm[b])) })
	return perm
}

// Package ids implements the dense-ID plane of the navigation engine: an
// append-only interner mapping string-shaped resource identifiers (rdf.IRI,
// text-index document IDs, vector-space coordinate keys) to dense uint32
// item IDs and back.
//
// Dense integer IDs are the representation IR systems actually use for hot
// set algebra — sorted postings and bitmaps over document numbers instead
// of string-keyed hash maps. Every layer of the engine (graph reverse
// index, query sets, facet histograms, vector postings) speaks these IDs
// natively and only rehydrates the original identifiers at the render
// boundary. See DESIGN.md's "ID plane" section for the invariants.
//
// The package is generic over any ~string key so the graph can intern
// rdf.IRI while the indexes intern plain strings without conversions.
package ids

import "sync"

// Interner assigns dense uint32 IDs to keys, append-only: a key's ID never
// changes and IDs are never reused, so slices indexed by ID stay valid
// across later interning. The zero Interner is not ready for use; call
// NewInterner.
//
// Interner is safe for concurrent use: lookups and rehydration may race
// with interning.
type Interner[K ~string] struct {
	mu   sync.RWMutex
	ids  map[K]uint32 // key → dense ID; guarded by mu
	keys []K          // dense ID → key; guarded by mu
}

// NewInterner returns an empty interner.
func NewInterner[K ~string]() *Interner[K] {
	return &Interner[K]{ids: make(map[K]uint32)}
}

// Intern returns the dense ID of k, assigning the next free ID when k is
// new.
func (in *Interner[K]) Intern(k K) uint32 {
	in.mu.RLock()
	id, ok := in.ids[k]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[k]; ok {
		return id
	}
	id = uint32(len(in.keys))
	in.ids[k] = id
	in.keys = append(in.keys, k)
	return id
}

// Lookup returns the ID of k without interning, and whether k is known.
func (in *Interner[K]) Lookup(k K) (uint32, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.ids[k]
	return id, ok
}

// Key returns the key behind a dense ID. IDs must come from this interner;
// unknown IDs return the zero key.
func (in *Interner[K]) Key(id uint32) K {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if int(id) >= len(in.keys) {
		var zero K
		return zero
	}
	return in.keys[id]
}

// AppendKeys rehydrates every ID in order, appending the keys to dst under
// one lock acquisition (the bulk form render boundaries use).
func (in *Interner[K]) AppendKeys(dst []K, ids []uint32) []K {
	in.mu.RLock()
	defer in.mu.RUnlock()
	for _, id := range ids {
		if int(id) < len(in.keys) {
			dst = append(dst, in.keys[id])
		}
	}
	return dst
}

// Len returns the number of interned keys; valid IDs are [0, Len).
func (in *Interner[K]) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.keys)
}

package ids

// Shard assignment for the scatter-gather serving path: the dense ID space
// is partitioned into n shards by a bit-mixing hash of the ID itself.
// Dense IDs are allocation-ordered, so sharding by `id % n` would put all
// recently loaded items in the last shard; mixing first spreads any
// contiguous ID range evenly across shards. The assignment is a pure
// function of (id, n) — segment shard directories written by one process
// are valid for any reader — and must never change: persisted per-shard
// segment sets encode it on disk.

// mix32 is the murmur3 fmix32 finalizer: a full-avalanche permutation of
// uint32, so consecutive dense IDs land in unrelated shards.
//
//magnet:hot
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// Shard returns the shard in [0, n) that the dense ID belongs to. Every ID
// maps to exactly one shard for a given n; n <= 1 always returns 0.
//
//magnet:hot
func Shard(id uint32, n int) int {
	if n <= 1 {
		return 0
	}
	return int(mix32(id) % uint32(n))
}

package ids

import (
	"encoding/binary"
	"testing"
)

func TestShardRangeAndDeterminism(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 64, 256} {
		for id := uint32(0); id < 10000; id++ {
			s := Shard(id, n)
			if s < 0 || s >= n {
				t.Fatalf("Shard(%d, %d) = %d, out of range", id, n, s)
			}
			if again := Shard(id, n); again != s {
				t.Fatalf("Shard(%d, %d) unstable: %d then %d", id, n, s, again)
			}
		}
	}
}

func TestShardDegenerateN(t *testing.T) {
	for _, n := range []int{-3, 0, 1} {
		for _, id := range []uint32{0, 1, 12345, ^uint32(0)} {
			if s := Shard(id, n); s != 0 {
				t.Fatalf("Shard(%d, %d) = %d, want 0", id, n, s)
			}
		}
	}
}

// TestShardBalance checks that contiguous dense-ID ranges — the shape the
// interner actually produces — spread evenly: no shard may deviate from
// the mean by more than 10% over 100k sequential IDs.
func TestShardBalance(t *testing.T) {
	const total = 100000
	for _, n := range []int{2, 4, 7, 16} {
		counts := make([]int, n)
		for id := uint32(0); id < total; id++ {
			counts[Shard(id, n)]++
		}
		mean := float64(total) / float64(n)
		for s, c := range counts {
			dev := (float64(c) - mean) / mean
			if dev < -0.10 || dev > 0.10 {
				t.Errorf("n=%d shard %d holds %d of %d ids (%.1f%% off the mean)",
					n, s, c, total, dev*100)
			}
		}
	}
}

// FuzzShard: at any shard count every dense ID lands in exactly one shard
// — the assignment is total (always in [0, n)), deterministic, and
// consistent with itself when recomputed from raw bytes.
func FuzzShard(f *testing.F) {
	f.Add(uint32(0), 1)
	f.Add(uint32(1), 2)
	f.Add(uint32(12345), 7)
	f.Add(^uint32(0), 256)
	f.Fuzz(func(t *testing.T, id uint32, n int) {
		if n > 1<<20 {
			n %= 1 << 20
		}
		s := Shard(id, n)
		if n <= 1 {
			if s != 0 {
				t.Fatalf("Shard(%d, %d) = %d, want 0", id, n, s)
			}
			return
		}
		if s < 0 || s >= n {
			t.Fatalf("Shard(%d, %d) = %d, out of [0,%d)", id, n, s, n)
		}
		// Exactly one shard claims the ID: membership s2 == s holds for s
		// and fails for every other shard by construction of a function,
		// but the persisted form must survive a byte round-trip too.
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], id)
		if again := Shard(binary.LittleEndian.Uint32(buf[:]), n); again != s {
			t.Fatalf("Shard(%d, %d) changed across round-trip: %d then %d", id, n, s, again)
		}
	})
}

package blackboard

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"magnet/internal/par"
	"magnet/internal/rdf"
)

// slowAnalyst posts a few suggestions, some with keys that collide across
// analysts so the dedup outcome depends on merge order, and spins a little
// so parallel schedules actually interleave.
type slowAnalyst struct {
	name  string
	posts []Suggestion
	react []Suggestion
}

func (a *slowAnalyst) Name() string          { return a.name }
func (a *slowAnalyst) Triggered(v View) bool { return true }
func (a *slowAnalyst) Suggest(v View, b *Board) {
	spin()
	for _, s := range a.posts {
		s.Analyst = a.name
		b.Post(s)
	}
}

func (a *slowAnalyst) React(v View, posted []Suggestion, b *Board) {
	spin()
	// React deterministically to the snapshot: one suggestion keyed off
	// the posted count, plus the analyst's fixed reactor posts.
	b.Post(Suggestion{
		Advisor: AdvisorModify,
		Title:   fmt.Sprintf("%s saw %d", a.name, len(posted)),
		Key:     fmt.Sprintf("react:%s", a.name),
		Analyst: a.name,
	})
	for _, s := range a.react {
		s.Analyst = a.name
		b.Post(s)
	}
}

func spin() {
	x := 1
	for i := 0; i < 20_000; i++ {
		x = x*31 + i
	}
	_ = x
}

// contentAnalyst is slowAnalyst without the reactor round.
type contentAnalyst struct{ slowAnalyst }

func buildAnalysts() []Analyst {
	mk := func(adv, title, key string, w float64) Suggestion {
		return Suggestion{Advisor: adv, Title: title, Key: key, Weight: w}
	}
	return []Analyst{
		&slowAnalyst{
			name: "alpha",
			posts: []Suggestion{
				mk(AdvisorRefine, "by author", "refine:author", 3),
				mk(AdvisorRefine, "by year", "refine:year", 2),
				mk(AdvisorRelated, "shared tag", "dup:shared", 1),
			},
			react: []Suggestion{mk(AdvisorModify, "drop author", "dup:modify", 1)},
		},
		&contentAnalyst{slowAnalyst{
			name: "beta",
			posts: []Suggestion{
				// Collides with alpha's key: only the first-registered
				// analyst's copy may survive, at every pool width.
				mk(AdvisorRelated, "shared tag (beta)", "dup:shared", 9),
				mk(AdvisorRelated, "similar text", "related:text", 4),
				mk(AdvisorQuery, "keyword", "", 0), // empty key: never deduped
			},
		}},
		&slowAnalyst{
			name: "gamma",
			posts: []Suggestion{
				mk(AdvisorHistory, "previous", "hist:prev", 1),
				mk(AdvisorQuery, "keyword", "", 0),
			},
			react: []Suggestion{mk(AdvisorModify, "drop author (gamma)", "dup:modify", 5)},
		},
	}
}

func runOnce(pool *par.Pool) *Board {
	r := NewRegistry(buildAnalysts()...)
	r.SetPool(pool)
	return r.RunContext(context.Background(), ItemView(rdf.IRI("urn:item:1")))
}

// TestSerialParallelDeterminism is the tentpole equivalence check: the
// board from a width-8 parallel run must be byte-identical — order, dedup
// winners, every field — to the serial oracle, across repeated runs.
func TestSerialParallelDeterminism(t *testing.T) {
	serial := runOnce(nil).Suggestions()
	if len(serial) == 0 {
		t.Fatal("serial run posted nothing")
	}
	// The dedup winner must be the first-registered poster.
	for _, s := range serial {
		if s.Key == "dup:shared" && s.Analyst != "alpha" {
			t.Fatalf("dup:shared won by %q, want alpha", s.Analyst)
		}
		if s.Key == "dup:modify" && s.Analyst != "alpha" {
			t.Fatalf("dup:modify won by %q, want alpha", s.Analyst)
		}
	}
	width1 := par.New(1)
	defer width1.Close()
	if got := runOnce(width1).Suggestions(); !reflect.DeepEqual(got, serial) {
		t.Fatalf("width-1 pool differs from nil pool:\n got %+v\nwant %+v", got, serial)
	}
	pool := par.New(8)
	defer pool.Close()
	for round := 0; round < 50; round++ {
		got := runOnce(pool).Suggestions()
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("round %d: parallel board differs from serial:\n got %+v\nwant %+v", round, got, serial)
		}
	}
}

// TestByAdvisorMemoized checks the grouping is consistent before and
// after posts, and that the memoized copy matches a fresh computation.
func TestByAdvisorMemoized(t *testing.T) {
	b := NewBoard()
	b.Post(Suggestion{Advisor: "A", Title: "one", Key: "k1"})
	b.Post(Suggestion{Advisor: "B", Title: "two", Key: "k2"})
	first := b.ByAdvisor()
	if len(first["A"]) != 1 || len(first["B"]) != 1 {
		t.Fatalf("ByAdvisor = %+v", first)
	}
	again := b.ByAdvisor()
	if !reflect.DeepEqual(first, again) {
		t.Fatal("repeated ByAdvisor calls differ")
	}
	// Appending to a returned slice must not corrupt the cache.
	_ = append(again["A"], Suggestion{Advisor: "A", Title: "intruder"})
	if got := b.ByAdvisor(); len(got["A"]) != 1 || got["A"][0].Title != "one" {
		t.Fatalf("cache corrupted by caller append: %+v", got["A"])
	}
	// A new post invalidates the cache.
	b.Post(Suggestion{Advisor: "A", Title: "three", Key: "k3"})
	if got := b.ByAdvisor(); len(got["A"]) != 2 || got["A"][1].Title != "three" {
		t.Fatalf("stale ByAdvisor after post: %+v", got["A"])
	}
	// Duplicate-key post is rejected and must not invalidate or grow.
	b.Post(Suggestion{Advisor: "A", Title: "dup", Key: "k3"})
	if got := b.ByAdvisor(); len(got["A"]) != 2 {
		t.Fatalf("rejected post changed grouping: %+v", got["A"])
	}
}

// TestMergeDedup checks Merge applies first-merged-wins dedup and counts
// only accepted suggestions.
func TestMergeDedup(t *testing.T) {
	dst := NewBoard()
	dst.Post(Suggestion{Title: "have", Key: "k"})
	src := NewBoard()
	src.Post(Suggestion{Title: "lose", Key: "k"})
	src.Post(Suggestion{Title: "new", Key: "n"})
	src.Post(Suggestion{Title: "anon"})
	if got := dst.Merge(src); got != 2 {
		t.Fatalf("Merge accepted %d, want 2", got)
	}
	ss := dst.Suggestions()
	want := []string{"have", "new", "anon"}
	if len(ss) != len(want) {
		t.Fatalf("suggestions = %+v", ss)
	}
	for i, s := range ss {
		if s.Title != want[i] {
			t.Fatalf("suggestions[%d] = %q, want %q", i, s.Title, want[i])
		}
	}
}

// TestAnalystPanicPropagates checks the serial contract survives
// parallelization: a panicking analyst fails the whole run, surfaced as a
// *par.PanicError panic at every width.
func TestAnalystPanicPropagates(t *testing.T) {
	for _, pool := range []*par.Pool{nil, par.New(4)} {
		r := NewRegistry(
			&slowAnalyst{name: "ok", posts: []Suggestion{{Advisor: "A", Title: "t"}}},
			&panicAnalyst{},
		)
		r.SetPool(pool)
		func() {
			defer func() {
				if _, ok := recover().(*par.PanicError); !ok {
					t.Errorf("width %d: expected *par.PanicError panic", pool.Width())
				}
			}()
			r.Run(ItemView(rdf.IRI("urn:item:1")))
		}()
		pool.Close()
	}
}

type panicAnalyst struct{}

func (panicAnalyst) Name() string         { return "panics" }
func (panicAnalyst) Triggered(View) bool  { return true }
func (panicAnalyst) Suggest(View, *Board) { panic("analyst bug") }

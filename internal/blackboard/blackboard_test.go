package blackboard

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"magnet/internal/query"
	"magnet/internal/rdf"
)

const ex = "http://example.org/"

func TestViewShapes(t *testing.T) {
	iv := ItemView(rdf.IRI(ex + "a"))
	if !iv.IsItem() || iv.IsCollection() {
		t.Error("item view shape wrong")
	}
	if iv.Key() != "item:"+ex+"a" {
		t.Errorf("item key = %q", iv.Key())
	}
	cv := CollectionView(query.NewQuery(), nil)
	if cv.IsItem() || !cv.IsCollection() {
		t.Error("collection view shape wrong")
	}
	if cv.Collection == nil {
		t.Error("nil items should normalize to empty slice")
	}
}

func TestBoardPostDedup(t *testing.T) {
	b := NewBoard()
	b.Post(Suggestion{Title: "x", Key: "k1", Analyst: "first"})
	b.Post(Suggestion{Title: "y", Key: "k1", Analyst: "second"})
	b.Post(Suggestion{Title: "z", Key: "k2"})
	b.Post(Suggestion{Title: "nokey1"})
	b.Post(Suggestion{Title: "nokey2"})
	ss := b.Suggestions()
	if len(ss) != 4 {
		t.Fatalf("suggestions = %d, want 4 (dup dropped, empty keys kept)", len(ss))
	}
	if ss[0].Analyst != "first" {
		t.Error("first poster should win")
	}
}

func TestBoardByAdvisor(t *testing.T) {
	b := NewBoard()
	b.Post(Suggestion{Advisor: AdvisorRefine, Title: "a"})
	b.Post(Suggestion{Advisor: AdvisorRelated, Title: "b"})
	b.Post(Suggestion{Advisor: AdvisorRefine, Title: "c"})
	got := b.ByAdvisor()
	if len(got[AdvisorRefine]) != 2 || len(got[AdvisorRelated]) != 1 {
		t.Errorf("ByAdvisor = %v", got)
	}
}

// stub analyst for registry tests.
type stubAnalyst struct {
	name      string
	wantItem  bool
	suggested *int
}

func (s stubAnalyst) Name() string { return s.name }
func (s stubAnalyst) Triggered(v View) bool {
	if s.wantItem {
		return v.IsItem()
	}
	return v.IsCollection()
}
func (s stubAnalyst) Suggest(v View, b *Board) {
	*s.suggested++
	b.Post(Suggestion{Advisor: AdvisorRefine, Title: s.name, Key: s.name, Analyst: s.name})
}

// reactor posts one more suggestion per observed posting.
type stubReactor struct {
	stubAnalyst
	reacted *int
}

func (r stubReactor) React(v View, posted []Suggestion, b *Board) {
	*r.reacted = len(posted)
	b.Post(Suggestion{Advisor: AdvisorModify, Title: "reaction", Key: "reaction"})
}

func TestRegistryTriggering(t *testing.T) {
	itemCount, collCount := 0, 0
	r := NewRegistry(
		stubAnalyst{name: "itemAnalyst", wantItem: true, suggested: &itemCount},
		stubAnalyst{name: "collAnalyst", wantItem: false, suggested: &collCount},
	)
	b := r.Run(ItemView(rdf.IRI(ex + "x")))
	if itemCount != 1 || collCount != 0 {
		t.Errorf("item view triggered item=%d coll=%d", itemCount, collCount)
	}
	if len(b.Suggestions()) != 1 {
		t.Errorf("suggestions = %v", b.Suggestions())
	}
	r.Run(CollectionView(query.NewQuery(), []rdf.IRI{}))
	if collCount != 1 {
		t.Errorf("collection analyst not triggered")
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"itemAnalyst", "collAnalyst"}) {
		t.Errorf("Names = %v", got)
	}
}

func TestReactorRunsAfterPrimaryRound(t *testing.T) {
	n1, n2, reacted := 0, 0, 0
	r := NewRegistry(
		stubReactor{stubAnalyst{name: "reactor", wantItem: true, suggested: &n1}, &reacted},
		stubAnalyst{name: "plain", wantItem: true, suggested: &n2},
	)
	b := r.Run(ItemView(rdf.IRI(ex + "x")))
	// Reactor saw both primary postings (its own + plain's).
	if reacted != 2 {
		t.Errorf("reactor saw %d postings, want 2", reacted)
	}
	found := false
	for _, s := range b.Suggestions() {
		if s.Title == "reaction" {
			found = true
		}
	}
	if !found {
		t.Error("reaction suggestion missing")
	}
}

func TestSelectTopWeightThenAlphabetical(t *testing.T) {
	ss := []Suggestion{
		{Title: "zeta", Weight: 0.9},
		{Title: "alpha", Weight: 0.5},
		{Title: "mid", Weight: 0.7},
		{Title: "low", Weight: 0.1},
	}
	sel, omitted := SelectTop(ss, 3)
	if omitted != 1 {
		t.Errorf("omitted = %d", omitted)
	}
	// Top-3 by weight {zeta, mid, alpha}, then alphabetical.
	want := []string{"alpha", "mid", "zeta"}
	got := []string{sel[0].Title, sel[1].Title, sel[2].Title}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SelectTop = %v, want %v", got, want)
	}
	if sel, omitted := SelectTop(ss, 0); sel != nil || omitted != 4 {
		t.Errorf("SelectTop(0) = %v, %d", sel, omitted)
	}
	if sel, _ := SelectTop(nil, 3); sel != nil {
		t.Error("SelectTop(nil)")
	}
}

func TestRefineModesDistinct(t *testing.T) {
	p := query.Property{Prop: rdf.IRI(ex + "p"), Value: rdf.IRI(ex + "v")}
	actions := []Action{
		Refine{Add: p, Mode: Filter},
		Refine{Add: p, Mode: Exclude},
		Refine{Add: p, Mode: Expand},
		GoToCollection{Title: "similar", Items: []rdf.IRI{"x"}},
		GoToItem{Item: "x"},
		ReplaceQuery{Query: query.NewQuery()},
		ShowRange{Prop: rdf.IRI(ex + "n")},
	}
	// All action types satisfy the interface (compile-time) and are
	// distinguishable by type switch.
	kinds := map[string]bool{}
	for _, a := range actions {
		kinds[fmt.Sprintf("%T", a)] = true
	}
	if len(kinds) != 5 { // three Refines share a type
		t.Errorf("action kinds = %v", kinds)
	}
}

func TestBoardConcurrentPost(t *testing.T) {
	b := NewBoard()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Post(Suggestion{Title: "t", Key: fmt.Sprintf("%d-%d", w, i)})
			}
		}(w)
	}
	wg.Wait()
	if len(b.Suggestions()) != 400 {
		t.Errorf("posted = %d", len(b.Suggestions()))
	}
}

// Package blackboard implements Magnet's blackboard model (paper §4.3,
// after Nii's blackboard architecture): analysts are "triggered by the
// framework based on the currently viewed [view] and suggest a particular
// kind of navigation refinement by writing it on the blackboard"; the
// framework then "collects the recommendations from the blackboard and
// presents them with the associated navigation advisors to the user".
//
// Analysts may also be "triggered by results from other analysts": after
// the primary round, analysts implementing Reactor run over the posted
// suggestions and may post more.
package blackboard

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"time"

	"magnet/internal/facets"
	"magnet/internal/itemset"
	"magnet/internal/obs"
	"magnet/internal/par"
	"magnet/internal/query"
	"magnet/internal/rdf"
)

// Advisor names: each suggestion is published under the advisor that
// presents its kind of navigation step (§4.1).
const (
	// AdvisorRelated is the "Related Items" advisor (sharing a property,
	// similar by content, similar by visit).
	AdvisorRelated = "Related Items"
	// AdvisorRefine is the "Refine Collections" advisor.
	AdvisorRefine = "Refine Collections"
	// AdvisorModify is the "Modify" advisor (contrary constraints, related
	// collections).
	AdvisorModify = "Modify"
	// AdvisorHistory is the "History" advisor (previous, refinement trail).
	AdvisorHistory = "History"
	// AdvisorQuery is the within-collection query affordance shown under
	// 'Query' in the navigation pane.
	AdvisorQuery = "Query"
)

// View is what the user is currently looking at: a single item, a
// collection produced by a query, or a fixed (materialized) collection such
// as a similar-items result. Analysts trigger on its shape.
type View struct {
	// Item is set for single-item views.
	Item rdf.IRI
	// Collection is set for collection views (may be empty but non-nil).
	Collection []rdf.IRI
	// Query is the query whose evaluation produced Collection (empty for
	// fixed collections).
	Query query.Query
	// Fixed marks a materialized collection not backed by a query.
	Fixed bool
	// Name titles fixed collections and identifies them in history.
	Name string
	// Shards, when non-nil, is the Collection's disjoint partition on the
	// dense-ID plane (the scatter layout the sharded query evaluator
	// produced). Downstream aggregations — facet overview, advisor member
	// counting — reuse it as their per-shard work split; nil means the
	// instance serves unsharded. Shards never affects Key: it is a
	// serving-layout detail, not view identity.
	Shards []itemset.Set
}

// ItemView returns a view of a single item.
func ItemView(item rdf.IRI) View { return View{Item: item} }

// CollectionView returns a view of a query's result collection.
func CollectionView(q query.Query, items []rdf.IRI) View {
	if items == nil {
		items = []rdf.IRI{}
	}
	return View{Collection: items, Query: q}
}

// FixedView returns a view of a materialized collection (e.g. the output of
// a similarity analyst's "arbitrary action").
func FixedView(name string, items []rdf.IRI) View {
	if items == nil {
		items = []rdf.IRI{}
	}
	return View{Collection: items, Fixed: true, Name: name}
}

// IsItem reports whether the view shows a single item.
func (v View) IsItem() bool { return v.Item != "" }

// IsCollection reports whether the view shows a collection.
func (v View) IsCollection() bool { return v.Collection != nil }

// Key returns a stable identity for the view, used by the history tracker.
func (v View) Key() string {
	if v.IsItem() {
		return "item:" + string(v.Item)
	}
	if v.Fixed {
		return "fixed:" + v.Name
	}
	return v.Query.Key()
}

// Action is what happens when the user selects a suggestion. The concrete
// types below cover the paper's step kinds; the navigation engine switches
// on them.
type Action interface{ isAction() }

// Refine adds a constraint to the current query (filter; Exclude filters
// the complement; Expand broadens with OR, §4.1 Refine Collections).
type Refine struct {
	Add query.Predicate
	// Mode selects filter/exclude/expand.
	Mode RefineMode
}

// RefineMode selects how a refinement predicate combines with the query.
type RefineMode int

const (
	// Filter keeps only matching items (AND).
	Filter RefineMode = iota
	// Exclude removes matching items (AND NOT).
	Exclude
	// Expand broadens the collection to include matching items (OR with
	// the whole current query).
	Expand
)

func (Refine) isAction() {}

// GoToCollection navigates to a fixed collection of items (e.g. similar
// items found by a learning algorithm; "at the most general some analysts
// specify arbitrary action", here materialized results).
type GoToCollection struct {
	Title string
	Items []rdf.IRI
}

func (GoToCollection) isAction() {}

// GoToItem navigates to a single item.
type GoToItem struct {
	Item rdf.IRI
}

func (GoToItem) isAction() {}

// ReplaceQuery replaces the whole query (contrary constraints, history).
type ReplaceQuery struct {
	Query query.Query
}

func (ReplaceQuery) isAction() {}

// ShowRange presents a numeric range widget with a query-preview histogram
// (Figure 5); selection then issues a query.Range refinement.
type ShowRange struct {
	Prop      rdf.IRI
	Histogram facets.Histogram
}

func (ShowRange) isAction() {}

// ShowSearch presents a keyword-search box scoped to the current collection
// (the 'Query' affordance in the navigation pane, §4.3); submitting issues a
// query.Keyword refinement.
type ShowSearch struct{}

func (ShowSearch) isAction() {}

// ShowOverview presents the large-collection overview interface (Figure 2),
// suggested when the navigation pane alone is inadequate (§3.1).
type ShowOverview struct{}

func (ShowOverview) isAction() {}

// Suggestion is one navigation recommendation posted on the blackboard.
type Suggestion struct {
	// Advisor is the presenting advisor (one of the Advisor* constants or
	// an extension).
	Advisor string
	// Group clusters suggestions within an advisor ("the interface groups
	// suggestions by properties", §3.2) — typically a property label.
	Group string
	// Title is the display text.
	Title string
	// Detail optionally annotates the title (e.g. an occurrence count).
	Detail string
	// Weight is the analyst-provided information-retrieval weight used for
	// selection (§4.1: "advisors use the analyst-provided information
	// retrieval weights ... to select the navigation suggestions").
	Weight float64
	// Action is performed when the user picks the suggestion.
	Action Action
	// Key de-duplicates suggestions across analysts.
	Key string
	// Analyst records the posting analyst (for debugging/tests).
	Analyst string
}

// Board is the shared blackboard. It is safe for concurrent posting.
type Board struct {
	mu sync.Mutex
	// suggestions is the posting order of accepted suggestions; guarded by mu.
	suggestions []Suggestion
	// seen dedupes suggestion keys (first poster wins); guarded by mu.
	seen map[string]bool
	// byAdvisor memoizes the ByAdvisor grouping; nil until computed,
	// invalidated by any accepted post; guarded by mu.
	byAdvisor map[string][]Suggestion
}

// NewBoard returns an empty board.
func NewBoard() *Board {
	return &Board{seen: make(map[string]bool)}
}

// Post writes a suggestion on the board. Suggestions with a duplicate
// non-empty Key are dropped (first poster wins).
func (b *Board) Post(s Suggestion) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.Key != "" {
		if b.seen[s.Key] {
			return
		}
		b.seen[s.Key] = true
	}
	b.suggestions = append(b.suggestions, s)
	b.byAdvisor = nil
}

// Merge posts src's suggestions onto b in src's posting order, applying
// b's dedup (first-merged poster wins), and reports how many were
// accepted. Merging per-analyst private boards in registration order
// reproduces a serial run's board exactly, whatever schedule produced the
// private boards.
func (b *Board) Merge(src *Board) int {
	ss := src.Suggestions()
	b.mu.Lock()
	defer b.mu.Unlock()
	accepted := 0
	for _, s := range ss {
		if s.Key != "" {
			if b.seen[s.Key] {
				continue
			}
			b.seen[s.Key] = true
		}
		b.suggestions = append(b.suggestions, s)
		accepted++
	}
	if accepted > 0 {
		b.byAdvisor = nil
	}
	return accepted
}

// Suggestions returns a copy of everything posted, in posting order.
func (b *Board) Suggestions() []Suggestion {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Suggestion, len(b.suggestions))
	copy(out, b.suggestions)
	return out
}

// Len returns the number of accepted suggestions.
func (b *Board) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.suggestions)
}

// ByAdvisor returns posted suggestions grouped by advisor name, in
// posting order within each group. The grouping is memoized until the
// next accepted post; the returned map is the caller's, but the slices
// share the cache's backing storage (capacity-clipped, so appending is
// safe) — treat the elements as read-only.
func (b *Board) ByAdvisor() map[string][]Suggestion {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.byAdvisor == nil {
		m := make(map[string][]Suggestion)
		for _, s := range b.suggestions {
			m[s.Advisor] = append(m[s.Advisor], s)
		}
		b.byAdvisor = m
	}
	out := make(map[string][]Suggestion, len(b.byAdvisor))
	for adv, ss := range b.byAdvisor {
		out[adv] = ss[:len(ss):len(ss)]
	}
	return out
}

// Analyst is an algorithmic unit posting suggestions for a view (§4.3).
type Analyst interface {
	// Name identifies the analyst.
	Name() string
	// Triggered reports whether the analyst fires for the view (the
	// "triggered when a user navigates to items of a given type"
	// mechanism).
	Triggered(v View) bool
	// Suggest posts the analyst's recommendations.
	Suggest(v View, b *Board)
}

// Reactor is an analyst additionally triggered "by results from other
// analysts": after the primary round it receives everything posted so far
// and may post more.
type Reactor interface {
	Analyst
	React(v View, posted []Suggestion, b *Board)
}

// Blackboard-stage observability. The per-run instruments are package
// level; per-analyst instruments are resolved once at Register time (the
// registry lookup involves a lock, so it must not sit on the run path).
var (
	runCount       = obs.NewCounter("blackboard.run.count")
	runNS          = obs.NewHistogram("blackboard.run.ns")
	runSuggestions = obs.NewHistogram("blackboard.run.suggestions")
	primaryRounds  = obs.NewCounter("blackboard.rounds.primary")
	reactorRounds  = obs.NewCounter("blackboard.rounds.reactor")
	postedTotal    = obs.NewCounter("blackboard.suggestions.posted")
)

// analystInstrument carries one analyst's metric handles.
type analystInstrument struct {
	runs        *obs.Counter
	ns          *obs.Histogram
	suggestions *obs.Counter
}

// metricSlug converts an analyst's display name to a metric path segment:
// lowercase, with runs of non-alphanumerics collapsed to '_'
// ("Related Items" → "related_items").
func metricSlug(name string) string {
	var b strings.Builder
	pendingSep := false
	for _, r := range strings.ToLower(name) {
		alnum := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
		if !alnum {
			pendingSep = b.Len() > 0
			continue
		}
		if pendingSep {
			b.WriteByte('_')
			pendingSep = false
		}
		b.WriteRune(r)
	}
	return b.String()
}

func newAnalystInstrument(name string) analystInstrument {
	prefix := "blackboard.analyst." + metricSlug(name)
	// Per-analyst metric names are dynamic, so these cannot be hoisted to
	// package-level vars; the registry memoizes by name and this runs once
	// per Registry construction, not per event.
	return analystInstrument{
		runs:        obs.NewCounter(prefix + ".runs"),        //magnet-vet:ignore obshygiene // dynamic name, init-time only
		ns:          obs.NewHistogram(prefix + ".ns"),        //magnet-vet:ignore obshygiene // dynamic name, init-time only
		suggestions: obs.NewCounter(prefix + ".suggestions"), //magnet-vet:ignore obshygiene // dynamic name, init-time only
	}
}

// Registry holds the configured analysts and runs them over views.
type Registry struct {
	mu sync.RWMutex
	// analysts is the registered advisor list; guarded by mu.
	analysts []Analyst
	// instruments holds per-analyst metric handles, parallel to analysts;
	// guarded by mu.
	instruments []analystInstrument
	// pool bounds analyst fan-out; nil runs every wave serially. Guarded
	// by mu.
	pool *par.Pool
}

// NewRegistry returns a registry with the given analysts.
func NewRegistry(analysts ...Analyst) *Registry {
	r := &Registry{}
	r.Register(analysts...)
	return r
}

// Register appends analysts (an "easily extensible manner to allow schema
// experts to support new search activities", §4.1).
func (r *Registry) Register(analysts ...Analyst) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.analysts = append(r.analysts, analysts...)
	for _, a := range analysts {
		r.instruments = append(r.instruments, newAnalystInstrument(a.Name()))
	}
}

// SetPool sets the worker pool analyst waves fan out on. A nil pool (the
// default) runs every wave serially; either way the board output is
// identical — parallel waves post to private boards merged in
// registration order.
func (r *Registry) SetPool(p *par.Pool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pool = p
}

// Names returns the registered analyst names, in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.analysts))
	for i, a := range r.analysts {
		out[i] = a.Name()
	}
	return out
}

// Run triggers all matching analysts over the view, then gives reactors one
// round over the posted results, and returns the filled board.
func (r *Registry) Run(v View) *Board {
	return r.RunContext(context.Background(), v)
}

// RunContext is Run with per-stage observability: every triggered analyst
// is timed (metrics always; an analyst.<name> span when ctx carries a
// trace) with its accepted-suggestion count recorded, and the primary and
// reactor rounds are counted separately (the §4.3 "triggered by results
// from other analysts" round).
//
// When the registry has a pool, the primary round and the reactor round
// each run as one parallel wave: every analyst posts to a private board
// and the private boards are merged in registration order, so the merged
// board — suggestion order, dedup outcomes, per-analyst accepted counts —
// is byte-identical to a serial run.
func (r *Registry) RunContext(ctx context.Context, v View) *Board {
	r.mu.RLock()
	analysts := make([]Analyst, len(r.analysts))
	copy(analysts, r.analysts)
	instruments := make([]analystInstrument, len(r.instruments))
	copy(instruments, r.instruments)
	pool := r.pool
	r.mu.RUnlock()

	ctx, sp := obs.StartSpan(ctx, "blackboard.run")
	start := time.Now()
	b := NewBoard()
	var triggered []int
	for i, a := range analysts {
		if a.Triggered(v) {
			triggered = append(triggered, i)
		}
	}
	runWave(ctx, pool, "analyst.", v, nil, analysts, instruments, triggered, b)
	primaryRounds.Inc()
	if len(triggered) > 0 {
		var reactors []int
		for _, i := range triggered {
			if _, ok := analysts[i].(Reactor); ok {
				reactors = append(reactors, i)
			}
		}
		if len(reactors) > 0 {
			posted := b.Suggestions()
			runWave(ctx, pool, "react.", v, posted, analysts, instruments, reactors, b)
			reactorRounds.Inc()
		}
	}
	total := b.Len()
	runCount.Inc()
	runNS.ObserveSince(start)
	runSuggestions.Observe(int64(total))
	postedTotal.Add(uint64(total))
	sp.SetInt("analysts", len(triggered))
	sp.SetInt("suggestions", total)
	sp.End()
	return b
}

// runWave runs one round of analysts — concurrently when the pool allows —
// each posting to a private board, then merges the private boards into dst
// in registration order. A non-nil posted slice selects the reactor round
// (every idx entry must then be a Reactor) and carries the pre-round
// snapshot. Per-analyst accepted counts (metric and span attr) are
// recorded at merge time, so dedup races cannot skew them. An analyst
// panic propagates as *par.PanicError, preserving the serial contract
// that a broken analyst fails the whole run; on context cancellation the
// wave merges what completed and returns.
func runWave(ctx context.Context, pool *par.Pool, spanPrefix string, v View, posted []Suggestion, analysts []Analyst, instruments []analystInstrument, idx []int, dst *Board) {
	if len(idx) == 0 {
		return
	}
	boards := make([]*Board, len(idx))
	spans := make([]*obs.Span, len(idx))
	err := par.ForN(ctx, pool, len(idx), func(k int) {
		i := idx[k]
		a := analysts[i]
		_, asp := obs.StartSpan(ctx, spanPrefix+a.Name())
		priv := NewBoard()
		start := time.Now()
		if posted == nil {
			a.Suggest(v, priv)
		} else {
			a.(Reactor).React(v, posted, priv)
		}
		instruments[i].runs.Inc()
		instruments[i].ns.ObserveSince(start)
		asp.End()
		boards[k] = priv
		spans[k] = asp
	})
	for k, priv := range boards {
		if priv == nil {
			continue
		}
		accepted := dst.Merge(priv)
		if accepted > 0 {
			instruments[idx[k]].suggestions.Add(uint64(accepted))
		}
		spans[k].SetInt("suggestions", accepted)
	}
	var pe *par.PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}
}

// SelectTop returns up to n suggestions with the highest weights from the
// slice, re-sorted alphabetically by title for presentation (§4.1: advisors
// select by weight, then suggestions are "presented in the interface
// typically sorted in an alphabetical order"). The returned omitted count
// feeds the interface's '...' affordance.
func SelectTop(ss []Suggestion, n int) (selected []Suggestion, omitted int) {
	if n <= 0 || len(ss) == 0 {
		return nil, len(ss)
	}
	byWeight := make([]Suggestion, len(ss))
	copy(byWeight, ss)
	sort.SliceStable(byWeight, func(i, j int) bool {
		if byWeight[i].Weight != byWeight[j].Weight {
			return byWeight[i].Weight > byWeight[j].Weight
		}
		return byWeight[i].Title < byWeight[j].Title
	})
	if len(byWeight) > n {
		omitted = len(byWeight) - n
		byWeight = byWeight[:n]
	}
	sort.SliceStable(byWeight, func(i, j int) bool {
		return byWeight[i].Title < byWeight[j].Title
	})
	return byWeight, omitted
}

// Package inexeval implements the paper's browsing-flexibility evaluation
// (§6.2) over the INEX-style corpus: content-only (CO) topics resolved the
// way a user would — keyword search, then navigating up to the enclosing
// article — and content-and-structure (CAS) topics resolved through the
// vector space model's composed coordinates plus a navigation step across
// the structure. The tree-shape ablation reproduces the paper's observed
// limitation: "Magnet would not follow multiple steps by default", so
// without the annotation CAS recall collapses while CO is unaffected.
package inexeval

import (
	"sort"

	"magnet/internal/core"
	"magnet/internal/datasets/inex"
	"magnet/internal/rdf"
	"magnet/internal/text"
	"magnet/internal/vsm"
)

// Result is one topic's outcome.
type Result struct {
	Topic     inex.Topic
	Retrieved []rdf.IRI
	// Recall is |retrieved ∩ relevant| / |relevant| at cutoff R (the size
	// of the ground-truth set).
	Recall float64
}

// System wraps a Magnet instance over an INEX corpus.
type System struct {
	Corpus *inex.Corpus
	M      *core.Magnet
}

// Open builds the evaluation system for a corpus.
func Open(c *inex.Corpus) *System {
	m := core.Open(c.Graph, core.Options{})
	return &System{Corpus: c, M: m}
}

// Run evaluates every topic and returns results in topic order.
func (s *System) Run() []Result {
	out := make([]Result, 0, len(s.Corpus.Topics))
	for _, t := range s.Corpus.Topics {
		var retrieved []rdf.IRI
		if t.Kind == inex.CO {
			retrieved = s.runCO(t)
		} else {
			retrieved = s.runCAS(t)
		}
		out = append(out, Result{
			Topic:     t,
			Retrieved: retrieved,
			Recall:    recall(retrieved, t.Relevant),
		})
	}
	return out
}

// runCO resolves a content-only topic the way the paper describes CO
// searches ("the direct application of traditional IR techniques"): ranked
// keyword search over the external text index, with each hit mapped up to
// its enclosing target-class element.
func (s *System) runCO(t inex.Topic) []rdf.IRI {
	hits := s.M.TextIndex().Search(t.Text, "", 0)
	cutoff := len(t.Relevant)
	var out []rdf.IRI
	seen := map[rdf.IRI]bool{}
	for _, h := range hits {
		if len(out) >= cutoff {
			break
		}
		anc, ok := s.enclosing(rdf.IRI(h.ID), t.TargetClass)
		if !ok || seen[anc] {
			continue
		}
		seen[anc] = true
		out = append(out, anc)
	}
	return out
}

// enclosing climbs reverse edges from node until an element of class cls is
// reached (XML trees have unique parents; the converter guarantees
// termination).
func (s *System) enclosing(node rdf.IRI, cls rdf.IRI) (rdf.IRI, bool) {
	g := s.M.Graph()
	for steps := 0; steps < 32; steps++ {
		if g.Has(node, rdf.Type, cls) {
			return node, true
		}
		parent, ok := parentOf(g, node)
		if !ok {
			return "", false
		}
		node = parent
	}
	return "", false
}

func parentOf(g *rdf.Graph, node rdf.IRI) (rdf.IRI, bool) {
	for _, p := range g.Predicates() {
		if p == rdf.Type {
			continue
		}
		for _, s := range g.Subjects(p, node) {
			return s, true
		}
	}
	return "", false
}

// casAnchor maps a CAS topic to the element class whose composed vector
// coordinates carry the topic's structure: authors for the vitae topic,
// articles for section-content topics.
func casAnchor(t inex.Topic) (anchor rdf.IRI, hop rdf.IRI) {
	if t.TargetClass == inex.ClassVita {
		return inex.ClassAuthor, inex.PropVita
	}
	return t.TargetClass, ""
}

// runCAS resolves a content-and-structure topic: rank anchor-class items by
// their word coordinates (which, on tree-shaped data, include composed
// multi-step attributes), then navigate the final structural hop to the
// target class.
func (s *System) runCAS(t inex.Topic) []rdf.IRI {
	anchorCls, hop := casAnchor(t)
	tokens := map[string]bool{}
	for _, tok := range text.DefaultAnalyzer.Terms(t.Text) {
		tokens[tok] = true
	}
	anchors := s.M.Graph().SubjectsOfType(anchorCls)

	type scored struct {
		item  rdf.IRI
		score float64
	}
	var ranked []scored
	for _, a := range anchors {
		sc := wordScore(s.M.Model(), a, tokens)
		if sc > 0 {
			ranked = append(ranked, scored{a, sc})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].item < ranked[j].item
	})

	cutoff := len(t.Relevant)
	var out []rdf.IRI
	for _, r := range ranked {
		if len(out) >= cutoff {
			break
		}
		item := r.item
		if hop != "" {
			o, ok := s.M.Graph().Object(item, hop)
			if !ok {
				continue
			}
			item = o.(rdf.IRI)
		}
		out = append(out, item)
	}
	return out
}

// wordScore sums the item's word-coordinate weights whose (stemmed) word is
// among the query tokens, over all property paths.
func wordScore(m *vsm.Model, item rdf.IRI, tokens map[string]bool) float64 {
	var sum float64
	for key, w := range m.Vector(item) {
		c, ok := vsm.ParseCoord(key)
		if !ok || c.Kind != vsm.CoordWord {
			continue
		}
		if tokens[c.Word] {
			sum += w
		}
	}
	return sum
}

func recall(retrieved, relevant []rdf.IRI) float64 {
	if len(relevant) == 0 {
		return 0
	}
	rel := make(map[rdf.IRI]bool, len(relevant))
	for _, r := range relevant {
		rel[r] = true
	}
	hit := 0
	for _, r := range retrieved {
		if rel[r] {
			hit++
		}
	}
	return float64(hit) / float64(len(relevant))
}

// MeanRecall averages recall over results of the given kind.
func MeanRecall(results []Result, kind inex.TopicKind) float64 {
	var sum float64
	n := 0
	for _, r := range results {
		if r.Topic.Kind == kind {
			sum += r.Recall
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

package inexeval

import (
	"testing"

	"magnet/internal/datasets/inex"
	"magnet/internal/rdf"
)

var rdfType = rdf.Type

func run(t *testing.T, skipTree bool) []Result {
	t.Helper()
	c, err := inex.Build(inex.Config{Articles: 120, SkipTreeAnnotation: skipTree})
	if err != nil {
		t.Fatal(err)
	}
	return Open(c).Run()
}

func TestCOTopicsHighRecall(t *testing.T) {
	// §6.2: "Since Magnet is built on these techniques, it would have been
	// able to retrieve all such documents."
	results := run(t, false)
	for _, r := range results {
		if r.Topic.Kind != inex.CO {
			continue
		}
		if r.Recall < 0.8 {
			t.Errorf("CO topic %s recall = %.2f, want ≥ 0.8 (relevant=%d)",
				r.Topic.ID, r.Recall, len(r.Topic.Relevant))
		}
	}
}

func TestCASTopicsRetrieveMost(t *testing.T) {
	// §6.2: "Magnet's navigation engine did have the flexibility to
	// retrieve most of the documents needed."
	results := run(t, false)
	for _, r := range results {
		if r.Topic.Kind != inex.CAS {
			continue
		}
		if r.Recall < 0.5 {
			t.Errorf("CAS topic %s recall = %.2f, want ≥ 0.5 (relevant=%d)",
				r.Topic.ID, r.Recall, len(r.Topic.Relevant))
		}
	}
}

func TestTreeAnnotationAblation(t *testing.T) {
	// Without the tree annotation Magnet "would not follow multiple steps
	// by default": CAS recall collapses while CO is unaffected (CO resolves
	// through the text index, not through composed coordinates).
	with := run(t, false)
	without := run(t, true)

	casWith := MeanRecall(with, inex.CAS)
	casWithout := MeanRecall(without, inex.CAS)
	if casWithout >= casWith {
		t.Errorf("CAS recall should drop without tree annotation: %.2f → %.2f",
			casWith, casWithout)
	}
	coWith := MeanRecall(with, inex.CO)
	coWithout := MeanRecall(without, inex.CO)
	if coWithout < coWith-0.05 {
		t.Errorf("CO recall should be unaffected: %.2f → %.2f", coWith, coWithout)
	}
}

func TestRetrievedAreTargetClass(t *testing.T) {
	c, err := inex.Build(inex.Config{Articles: 120})
	if err != nil {
		t.Fatal(err)
	}
	sys := Open(c)
	for _, r := range sys.Run() {
		if len(r.Retrieved) == 0 {
			t.Errorf("topic %s retrieved nothing", r.Topic.ID)
			continue
		}
		// Every retrieved item must have the topic's target element type —
		// CAS1's structural hop lands on vita elements, CO hits climb to
		// articles.
		for _, it := range r.Retrieved {
			if !c.Graph.Has(it, rdfType, r.Topic.TargetClass) {
				t.Errorf("topic %s retrieved %s of wrong type", r.Topic.ID, it)
			}
		}
	}
}

func TestMeanRecallEmpty(t *testing.T) {
	if MeanRecall(nil, inex.CO) != 0 {
		t.Error("empty mean should be 0")
	}
}

package magnet_test

import (
	"testing"
	"time"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
)

// TestScaleFullCorpus exercises the system at the paper's full scale: the
// complete 6,444-recipe corpus indexed and navigated end to end, with loose
// wall-clock budgets guarding against accidental quadratic regressions.
// Skipped under -short.
func TestScaleFullCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus scale test skipped in -short mode")
	}

	start := time.Now()
	g := recipes.Build(recipes.Config{Recipes: 6444, Seed: 1})
	buildTime := time.Since(start)

	start = time.Now()
	m := core.Open(g, core.Options{})
	openTime := time.Since(start)

	if n := len(m.Items()); n < 6444 {
		t.Fatalf("items = %d", n)
	}
	// Indexing the full corpus should stay well under a minute even on
	// modest hardware (measured ~2 s).
	if openTime > time.Minute {
		t.Errorf("core.Open took %v — likely a complexity regression", openTime)
	}

	s := m.NewSession()
	start = time.Now()
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
		query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Parsley")},
	)})
	pane := s.Pane()
	paneTime := time.Since(start)

	if len(s.Items()) == 0 || len(pane.AllSuggestions()) == 0 {
		t.Fatal("full-corpus navigation produced nothing")
	}
	if paneTime > 10*time.Second {
		t.Errorf("query+pane took %v", paneTime)
	}
	t.Logf("build=%v open=%v query+pane=%v items=%d greekParsley=%d suggestions=%d",
		buildTime, openTime, paneTime, len(m.Items()), len(s.Items()), len(pane.AllSuggestions()))
}

// Package magnet is a from-scratch Go reproduction of "Magnet: Supporting
// Navigation in Semistructured Data Environments" (Sinha & Karger, SIGMOD
// 2005): a domain-independent navigation system over semistructured (RDF)
// data, built on a vector space model extended with attribute/value
// coordinates, attribute compositions and unit-circle numeric encoding, a
// predicate query engine, and a blackboard of analysts feeding navigation
// advisors.
//
// The root package only carries documentation and the benchmark harness
// (bench_test.go regenerates every figure and result of the paper's
// evaluation); the implementation lives under internal/:
//
//	internal/rdf        RDF graph substrate (terms, store, N-Triples)
//	internal/text       tokenizer, stop words, Porter stemmer
//	internal/index      tf·idf vector store + inverted text index (the
//	                    Lucene substitute)
//	internal/schema     schema annotations (labels, value types,
//	                    compositions, hidden, facets, tree shape)
//	internal/vsm        the semistructured vector space model (§5)
//	internal/query      the query engine (§4.2)
//	internal/blackboard analysts/advisors blackboard (§4.3)
//	internal/analysts   the paper's analyst set (§4.1)
//	internal/advisors   navigation pane assembly
//	internal/facets     faceted summaries and range histograms
//	internal/history    visit log, transitions, refinement trail
//	internal/core       the Magnet facade and Session
//	internal/baseline   the Flamenco-like study control
//	internal/render     text rendering of the interface
//	internal/web        the interface as a web application
//	internal/qlang      structured query surface language
//	internal/annotate   §7 heuristic annotation inference
//	internal/datasets/* recipes, 50 states, factbook, inbox, courses,
//	                    artstor, INEX, csvrdf
//	internal/xmlconv    XML→RDF conversion (§6.2)
//	internal/inexeval   the §6.2 flexibility evaluation
//	internal/simuser    the §6.3 simulated user study
//
// Binaries: cmd/magnet (interactive browser), cmd/magnet-server (web UI),
// cmd/magnet-eval (§6.1 and Figures 1–8), cmd/magnet-inex (§6.2),
// cmd/magnet-study (§6.3), cmd/magnet-annotate (§7 annotation advisor).
package magnet

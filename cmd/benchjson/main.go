// Command benchjson converts `go test -bench` text output (read from stdin)
// into a machine-readable JSON document, so benchmark snapshots can be
// committed and diffed across PRs (the BENCH_<date>.json files written by
// `make bench-json`).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH_2026-08-06.json
//
// Standard metrics (ns/op, B/op, allocs/op) and custom ReportMetric units
// are all carried through as a name → value map per benchmark. The schema
// and parser live in internal/benchfmt, shared with cmd/magnet-load (which
// merges its load-test results into the same day's snapshot).
package main

import (
	"fmt"
	"os"

	"magnet/internal/benchfmt"
)

func main() {
	doc := benchfmt.New()
	bs, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	doc.Benchmarks = bs
	if err := doc.Encode(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

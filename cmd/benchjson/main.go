// Command benchjson converts `go test -bench` text output (read from stdin)
// into a machine-readable JSON document, so benchmark snapshots can be
// committed and diffed across PRs (the BENCH_<date>.json files written by
// `make bench-json`).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH_2026-08-06.json
//
// Standard metrics (ns/op, B/op, allocs/op) and custom ReportMetric units
// are all carried through as a name → value map per benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (from the preceding "pkg:"
	// line; empty when the input carries none).
	Pkg string `json:"pkg,omitempty"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value: ns/op, B/op, allocs/op, and any custom
	// units from b.ReportMetric.
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the emitted JSON root. GoMaxProcs and NumCPU record the
// machine the run happened on — per-benchmark Procs only captures the
// -cpu suffix, so without these two numbers runs from differently-sized
// hosts are not comparable.
type Document struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go"`
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"numcpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

func main() {
	doc := Document{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1], Pkg: pkg, Procs: 1, Metrics: map[string]float64{}}
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
		}
		b.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

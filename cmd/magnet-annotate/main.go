// Command magnet-annotate implements the paper's §7 future work as a tool:
// it inspects a dataset and proposes the schema annotations a schema expert
// would add — value types, labels, compositions, facet preferences, hidden
// flags — with confidences and evidence, optionally applying them and
// writing the annotated graph back out as N-Triples.
//
// Usage:
//
//	magnet-annotate [-dataset states|factbook|courses|recipes] [-file in.nt]
//	                [-min 0.5] [-apply out.nt]
package main

import (
	"flag"
	"fmt"
	"os"

	"magnet/internal/annotate"
	"magnet/internal/datasets/artstor"
	"magnet/internal/datasets/courses"
	"magnet/internal/datasets/factbook"
	"magnet/internal/datasets/recipes"
	"magnet/internal/datasets/states"
	"magnet/internal/rdf"
)

func main() {
	dataset := flag.String("dataset", "states", "built-in dataset: states, factbook, courses, recipes")
	file := flag.String("file", "", "load an N-Triples file instead of a built-in dataset")
	min := flag.Float64("min", 0.5, "minimum proposal confidence")
	apply := flag.String("apply", "", "apply proposals and write the annotated graph to this N-Triples file")
	flag.Parse()

	g, err := load(*dataset, *file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "magnet-annotate: %v\n", err)
		os.Exit(1)
	}

	proposals := annotate.Advise(g, annotate.Config{})
	kept := proposals[:0]
	for _, p := range proposals {
		if p.Confidence >= *min {
			kept = append(kept, p)
		}
	}
	fmt.Printf("%d proposals (of %d) at confidence ≥ %.2f:\n\n", len(kept), len(proposals), *min)
	for _, p := range kept {
		fmt.Printf("  [%-10s] %s\n", p.Kind, p.Describe(g.Label))
	}

	if *apply == "" {
		return
	}
	annotate.Apply(g, kept)
	out, err := os.Create(*apply)
	if err != nil {
		fmt.Fprintf(os.Stderr, "magnet-annotate: %v\n", err)
		os.Exit(1)
	}
	defer out.Close()
	if err := rdf.WriteNTriples(g, out); err != nil {
		fmt.Fprintf(os.Stderr, "magnet-annotate: writing %s: %v\n", *apply, err)
		os.Exit(1)
	}
	fmt.Printf("\napplied %d proposals; annotated graph written to %s (%d triples)\n",
		len(kept), *apply, g.Len())
}

func load(dataset, file string) (*rdf.Graph, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return rdf.ReadNTriples(f)
	}
	switch dataset {
	case "states":
		return states.Build()
	case "factbook":
		return factbook.Build(factbook.Config{}), nil
	case "artstor":
		return artstor.Build(artstor.Config{}), nil
	case "courses":
		return courses.Build(courses.Config{}), nil
	case "recipes":
		return recipes.Build(recipes.Config{Recipes: 1000, SkipAnnotations: true}), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

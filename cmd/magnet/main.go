// Command magnet is the interactive navigation interface: a terminal
// rendition of the paper's single-window browser (Figure 1) with the
// navigation pane, keyword toolbar, facet overview, refinement history, and
// numbered suggestion selection.
//
// Usage:
//
//	magnet [-dataset recipes|states|factbook|inbox|courses|inex] [-file data.nt]
//	       [-recipes N] [-baseline] [-seed N]
//
// Commands inside the browser: help, search <kw>, within <kw>, open <n>,
// go <n>, rm <i>, neg <i>, range <prop#> <min> <max>, overview, pane,
// items, back, home, quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"magnet/internal/advisors"
	"magnet/internal/analysts"
	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/artstor"
	"magnet/internal/datasets/courses"
	"magnet/internal/datasets/factbook"
	"magnet/internal/datasets/inbox"
	"magnet/internal/datasets/inex"
	"magnet/internal/datasets/recipes"
	"magnet/internal/datasets/states"
	"magnet/internal/qlang"
	"magnet/internal/rdf"
	"magnet/internal/render"
)

func main() {
	dataset := flag.String("dataset", "recipes", "built-in dataset: recipes, states, factbook, inbox, courses, inex")
	file := flag.String("file", "", "load an N-Triples file instead of a built-in dataset")
	nRecipes := flag.Int("recipes", 2000, "recipe corpus size for -dataset recipes")
	seed := flag.Int64("seed", 1, "dataset seed")
	useBaseline := flag.Bool("baseline", false, "use the Flamenco-like baseline advisor set")
	annotate := flag.Bool("annotate", true, "apply schema annotations where the dataset has them")
	flag.Parse()

	g, allSubjects, err := load(*dataset, *file, *nRecipes, *seed, *annotate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "magnet: %v\n", err)
		os.Exit(1)
	}

	opts := core.Options{IndexAllSubjects: allSubjects}
	if *useBaseline {
		opts.Analysts = analysts.BaselineSet
	}
	m := core.Open(g, opts)
	s := m.NewSession()

	fmt.Printf("Magnet — %d items indexed. Type 'help' for commands.\n\n", len(m.Items()))
	repl(m, s)
}

func load(dataset, file string, nRecipes int, seed int64, annotate bool) (*rdf.Graph, bool, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		g, err := rdf.ReadNTriples(f)
		if err != nil {
			return nil, false, err
		}
		// core.Open falls back to all subjects automatically when the file
		// carries no rdf:type triples.
		return g, false, nil
	}
	switch dataset {
	case "recipes":
		return recipes.Build(recipes.Config{Recipes: nRecipes, Seed: seed, SkipAnnotations: !annotate}), false, nil
	case "states":
		g, err := states.Build()
		if err != nil {
			return nil, false, err
		}
		if annotate {
			states.Annotate(g)
		}
		return g, true, nil
	case "factbook":
		g := factbook.Build(factbook.Config{Seed: seed})
		if annotate {
			factbook.Annotate(g)
		}
		return g, false, nil
	case "inbox":
		return inbox.Build(inbox.Config{Seed: seed}), false, nil
	case "artstor":
		return artstor.Build(artstor.Config{HideAccession: true}), false, nil
	case "courses":
		return courses.Build(courses.Config{Seed: seed, HideCatalogKey: annotate}), false, nil
	case "inex":
		c, err := inex.Build(inex.Config{Seed: seed})
		if err != nil {
			return nil, false, err
		}
		return c.Graph, false, nil
	default:
		return nil, false, fmt.Errorf("unknown dataset %q", dataset)
	}
}

const helpText = `Commands:
  search <keywords>    start a fresh keyword search (the toolbar)
  q <expr>             structured query, e.g. cuisine = Greek AND NOT
                       ingredient.group = Nuts AND servings >= 4
  within <keywords>    refine the current collection by keywords
  pane                 show the navigation pane (suggestions are numbered)
  go <n>               follow pane suggestion n
  ex <n>               apply refine-suggestion n as an exclusion (NOT)
  or <n>               apply refine-suggestion n as an expansion (OR)
  open <n>             open the n-th listed item
  items                list the current collection
  overview             large-collection facet overview (Figure 2)
  rm <i>               remove query constraint i
  neg <i>              negate query constraint i
  range <n> <lo> <hi>  apply range widget from pane suggestion n
  compound or|and      start a compound refinement (§3.3)
  drag <n>             drag refine-suggestion n into the compound
  capply [not]         apply the compound (optionally as exclusion)
  ccancel              abandon the compound
  why <n>              explain why listed item n is similar to the last
                       opened item (top shared coordinates)
  back                 undo the last refinement
  home                 all items
  help                 this text
  quit                 exit`

func repl(m *core.Magnet, s *core.Session) {
	in := bufio.NewScanner(os.Stdin)
	var lastItem rdf.IRI
	showPane(m, s)
	for {
		fmt.Print("\nmagnet> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		cmd, arg, _ := strings.Cut(line, " ")
		arg = strings.TrimSpace(arg)
		switch cmd {
		case "quit", "exit":
			return
		case "help":
			fmt.Println(helpText)
		case "search":
			s.Search(arg)
			showPane(m, s)
		case "q":
			res := qlang.NewResolver(m.Graph(), m.Schema())
			parsed, err := qlang.Parse(arg, res)
			if err != nil {
				fmt.Println(err)
				continue
			}
			if err := s.Apply(blackboard.ReplaceQuery{Query: parsed}); err != nil {
				fmt.Println(err)
				continue
			}
			showPane(m, s)
		case "within":
			s.SearchWithin(arg)
			showPane(m, s)
		case "pane":
			showPane(m, s)
		case "items":
			render.Collection(os.Stdout, m.Graph(), s.Items(), 25)
		case "overview":
			render.Overview(os.Stdout, s.Overview(6), len(s.Items()))
		case "open":
			if it, ok := nthItem(s, arg); ok {
				lastItem = it
				s.OpenItem(it)
				render.Item(os.Stdout, m.Graph(), it)
				showPane(m, s)
			}
		case "why":
			if lastItem == "" {
				fmt.Println("open an item first")
				continue
			}
			if it, ok := nthItem(s, arg); ok {
				explainSimilarity(m, lastItem, it)
			}
		case "go", "ex", "or":
			applySuggestion(m, s, cmd, arg)
		case "rm":
			if i, err := strconv.Atoi(arg); err == nil {
				s.RemoveConstraint(i)
				showPane(m, s)
			}
		case "neg":
			if i, err := strconv.Atoi(arg); err == nil {
				s.NegateConstraint(i)
				showPane(m, s)
			}
		case "range":
			applyRange(m, s, arg)
		case "compound":
			switch arg {
			case "or":
				s.BeginCompound(core.CompoundOr)
				fmt.Println("building OR compound; use 'drag <n>' then 'capply'")
			case "and":
				s.BeginCompound(core.CompoundAnd)
				fmt.Println("building AND compound; use 'drag <n>' then 'capply'")
			default:
				fmt.Println("usage: compound or|and")
			}
		case "drag":
			dragSuggestion(m, s, arg)
		case "capply":
			mode := blackboard.Filter
			if arg == "not" {
				mode = blackboard.Exclude
			}
			if err := s.ApplyCompound(mode); err != nil {
				fmt.Println(err)
			} else {
				showPane(m, s)
			}
		case "ccancel":
			s.CancelCompound()
			fmt.Println("compound abandoned")
		case "back":
			if s.Back() {
				showPane(m, s)
			} else {
				fmt.Println("nothing to undo")
			}
		case "home":
			s.GoHome()
			showPane(m, s)
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}

func showPane(m *core.Magnet, s *core.Session) {
	fmt.Println()
	render.Collection(os.Stdout, m.Graph(), s.Items(), 10)
	fmt.Println()
	render.Pane(os.Stdout, s.Pane(), true)
}

func nthItem(s *core.Session, arg string) (rdf.IRI, bool) {
	n, err := strconv.Atoi(arg)
	items := s.Items()
	if err != nil || n < 1 || n > len(items) {
		fmt.Printf("open: need an item number 1..%d\n", len(items))
		return "", false
	}
	return items[n-1], true
}

func nthSuggestion(p advisors.Pane, arg string) (blackboard.Suggestion, bool) {
	n, err := strconv.Atoi(arg)
	all := p.AllSuggestions()
	if err != nil || n < 1 || n > len(all) {
		fmt.Printf("need a suggestion number 1..%d\n", len(all))
		return blackboard.Suggestion{}, false
	}
	return all[n-1], true
}

func applySuggestion(m *core.Magnet, s *core.Session, cmd, arg string) {
	sg, ok := nthSuggestion(s.Pane(), arg)
	if !ok {
		return
	}
	action := sg.Action
	if r, isRefine := action.(blackboard.Refine); isRefine {
		switch cmd {
		case "ex":
			r.Mode = blackboard.Exclude
		case "or":
			r.Mode = blackboard.Expand
		}
		action = r
	} else if cmd != "go" {
		fmt.Println("ex/or apply only to refinement suggestions")
		return
	}
	switch act := action.(type) {
	case blackboard.ShowRange:
		render.Histogram(os.Stdout, m.Label(act.Prop), act.Histogram)
		fmt.Printf("use: range %s <lo> <hi>\n", arg)
	case blackboard.ShowSearch:
		fmt.Println("use: within <keywords>")
	case blackboard.ShowOverview:
		render.Overview(os.Stdout, s.Overview(6), len(s.Items()))
	default:
		if err := s.Apply(action); err != nil {
			fmt.Println(err)
			return
		}
		showPane(m, s)
	}
}

func explainSimilarity(m *core.Magnet, a, b rdf.IRI) {
	fmt.Printf("why %q resembles %q (similarity %.3f):\n",
		m.Label(b), m.Label(a), m.Model().Similarity(a, b))
	expl := m.Model().ExplainSimilarity(a, b, 8)
	lines := m.ExplainSimilarityText(a, b, 8)
	if len(lines) == 0 {
		fmt.Println("  nothing in common")
		return
	}
	for i, line := range lines {
		fmt.Printf("  %.4f  %s\n", expl[i].Weight, line)
	}
}

func dragSuggestion(m *core.Magnet, s *core.Session, arg string) {
	sg, ok := nthSuggestion(s.Pane(), arg)
	if !ok {
		return
	}
	r, isRefine := sg.Action.(blackboard.Refine)
	if !isRefine {
		fmt.Println("only refinement suggestions can be dragged into a compound")
		return
	}
	if err := s.AddToCompound(r.Add); err != nil {
		fmt.Println(err)
		return
	}
	_, preds, _ := s.Compound()
	fmt.Printf("compound now holds %d constraint(s)\n", len(preds))
}

func applyRange(m *core.Magnet, s *core.Session, arg string) {
	fields := strings.Fields(arg)
	if len(fields) != 3 {
		fmt.Println("usage: range <suggestion#> <lo> <hi>")
		return
	}
	sg, ok := nthSuggestion(s.Pane(), fields[0])
	if !ok {
		return
	}
	act, isRange := sg.Action.(blackboard.ShowRange)
	if !isRange {
		fmt.Println("that suggestion is not a range widget")
		return
	}
	lo, err1 := strconv.ParseFloat(fields[1], 64)
	hi, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		fmt.Println("range bounds must be numbers")
		return
	}
	s.ApplyRange(act.Prop, &lo, &hi)
	showPane(m, s)
}

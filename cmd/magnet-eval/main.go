// Command magnet-eval reproduces the paper's dataset-flexibility evaluation
// (§6.1) and its interface figures. Each experiment prints the rendered
// interface (navigation pane, facet overview, range widget) plus CHECK
// lines with the measured values EXPERIMENTS.md records against the
// paper's claims.
//
// Usage:
//
//	magnet-eval -exp fig1|fig2|fig5|fig6|fig7|fig8|factbook|courses|all
//	            [-recipes N] [-seed N] [-segments dir]
//	magnet-eval -trace [-exp P5|fig2] [-segments dir]
//
// -trace runs one navigation step (query → blackboard → advisors →
// overview) under obs tracing and prints the span tree with per-stage
// durations instead of the experiment output.
//
// -segments runs the experiment against a precompiled segment set written
// by magnet-build instead of building the dataset in memory; the rendered
// output is byte-identical. Only the single-dataset experiments support it
// (fig1, fig2 over recipes; fig5, fig6 over inbox), and the set's manifest
// must match the experiment's dataset and -recipes/-seed parameters.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"magnet/internal/annotate"
	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/dataload"
	"magnet/internal/datasets/artstor"
	"magnet/internal/datasets/courses"
	"magnet/internal/datasets/factbook"
	"magnet/internal/datasets/inbox"
	"magnet/internal/datasets/recipes"
	"magnet/internal/datasets/states"
	"magnet/internal/facets"
	"magnet/internal/obs"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/render"
)

// apply performs a navigation action, aborting the run on failure: every
// step below depends on the resulting view.
// statesGraph builds the embedded 50-states dataset, exiting on the
// (compile-time-impossible) parse failure rather than panicking.
func statesGraph() *rdf.Graph {
	g, err := states.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "magnet-eval: %v\n", err)
		os.Exit(1)
	}
	return g
}

func apply(s *core.Session, a blackboard.Action) {
	if err := s.Apply(a); err != nil {
		fmt.Fprintf(os.Stderr, "apply: %v\n", err)
		os.Exit(1)
	}
}

// parallelism is the -parallelism flag value, applied to every Magnet the
// experiments open. segmentsDir is the -segments flag value; when set, the
// single-dataset experiments open the precompiled set instead of building.
var (
	parallelism int
	segmentsDir string
)

// open builds a Magnet with the run's parallelism setting applied.
func open(g *rdf.Graph, opts core.Options) *core.Magnet {
	opts.Parallelism = parallelism
	return core.Open(g, opts)
}

// openDataset opens the named dataset for an experiment: from -segments
// when set (after checking the set's manifest matches the dataset and
// parameters the experiment asked for), otherwise by building it in memory.
// Callers must Close the result.
func openDataset(ctx context.Context, dataset string, n int, seed int64) *core.Magnet {
	opts := core.Options{Parallelism: parallelism}
	if segmentsDir == "" {
		g, allSubjects, err := dataload.Load(dataload.Spec{Dataset: dataset, Recipes: n, Seed: seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "magnet-eval: load %s: %v\n", dataset, err)
			os.Exit(1)
		}
		opts.IndexAllSubjects = allSubjects
		return core.OpenContext(ctx, g, opts)
	}
	m, err := core.OpenSegmentsContext(ctx, segmentsDir, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "magnet-eval: open segments %s: %v\n", segmentsDir, err)
		os.Exit(1)
	}
	man := m.Segments().Manifest
	if man.Dataset != dataset {
		fmt.Fprintf(os.Stderr, "magnet-eval: segment set %s holds dataset %q, experiment needs %q\n",
			segmentsDir, man.Dataset, dataset)
		os.Exit(1)
	}
	want := dataload.Spec{Dataset: dataset, Recipes: n, Seed: seed}.Params()
	for k, v := range want {
		if man.Params[k] != v {
			fmt.Fprintf(os.Stderr, "magnet-eval: segment set %s built with %s=%d, experiment needs %s=%d (rebuild with magnet-build)\n",
				segmentsDir, k, man.Params[k], k, v)
			os.Exit(1)
		}
	}
	return m
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig1, fig2, fig5, fig6, fig7, fig8, factbook, courses, or all")
	nRecipes := flag.Int("recipes", 6444, "recipe corpus size")
	seed := flag.Int64("seed", 1, "dataset seed")
	trace := flag.Bool("trace", false, "trace one navigation step (-exp P5 or fig2) and print its span tree")
	flag.IntVar(&parallelism, "parallelism", 0, "worker pool size for the navigation pipeline (0 = GOMAXPROCS, 1 = serial)")
	flag.StringVar(&segmentsDir, "segments", "", "run against a precompiled segment set (fig1, fig2, fig5, fig6 only)")
	flag.Parse()

	// Runtime telemetry (runtime.* gauges + GC pause histogram): sampled
	// once up front and every second for the lifetime of the run, so long
	// experiments expose heap/goroutine state alongside the pipeline
	// metrics.
	stopSampler := obs.StartRuntimeSampler(time.Second)
	defer stopSampler()

	if *trace {
		traceExp(*exp, *nRecipes, *seed)
		return
	}

	if segmentsDir != "" {
		switch *exp {
		case "fig1", "fig2", "fig5", "fig6":
		default:
			fmt.Fprintf(os.Stderr, "magnet-eval: -segments supports -exp fig1, fig2, fig5, or fig6, not %q\n", *exp)
			os.Exit(2)
		}
	}

	runners := map[string]func(int, int64){
		"fig1":     fig1,
		"fig2":     fig2,
		"fig5":     fig5,
		"fig6":     fig6,
		"fig7":     fig7,
		"fig8":     fig8,
		"factbook": factbookExp,
		"courses":  coursesExp,
		"autoann":  autoAnnotateExp,
	}
	order := []string{"fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "factbook", "courses", "autoann"}

	if *exp == "all" {
		for _, name := range order {
			runners[name](*nRecipes, *seed)
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "magnet-eval: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	run(*nRecipes, *seed)
}

func header(title string) {
	fmt.Printf("\n============ %s ============\n", title)
}

// traceExp runs one navigation step under obs tracing and prints the span
// tree (-trace). "P5" is the benchmark conjunction over recipes@6444
// (Greek|Italian cuisine, no walnuts, at least 4 servings); "fig2" (and
// the default "all") is the unrefined type query behind the facet
// overview. The step is query → pane (blackboard + advisors) → overview,
// the full work behind rendering one collection page.
func traceExp(exp string, n int, seed int64) {
	var q query.Query
	switch exp {
	case "P5", "p5":
		q = query.NewQuery(
			query.TypeIs(recipes.ClassRecipe),
			query.Or{Ps: []query.Predicate{
				query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
				query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Italian")},
			}},
			query.Not{P: query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Walnuts")}},
			query.AtLeast(recipes.PropServings, 4),
		)
	case "fig2", "all":
		q = query.NewQuery(query.TypeIs(recipes.ClassRecipe))
	default:
		fmt.Fprintf(os.Stderr, "magnet-eval: -trace supports -exp P5 or fig2, not %q\n", exp)
		os.Exit(2)
	}
	// Open inside the trace so the startup spans (startup.load and its
	// per-component children) appear in the printed tree — for segment
	// sets, that is the whole point of -trace -segments.
	ctx, root := obs.StartTrace(context.Background(), "navigation-step")
	start := time.Now()
	m := openDataset(ctx, "recipes", n, seed)
	defer m.Close()
	s := m.NewSession()
	s.SetContext(ctx)
	apply(s, blackboard.ReplaceQuery{Query: q})
	s.Pane()
	s.Overview(6)
	total := time.Since(start)
	root.End()
	s.SetContext(nil)

	// Render from the frozen record — the same immutable form the flight
	// recorder retains and /debug/traces serves — so -trace output and the
	// server's trace endpoint can never drift apart.
	rec := obs.Freeze(root)
	header("trace — one navigation step (" + exp + ")")
	rec.WriteTree(os.Stdout)
	staged := rec.StageDurations()
	cover := 0.0
	if total > 0 {
		cover = float64(staged) / float64(total)
	}
	fmt.Printf("CHECK trace exp=%s spans=%d total=%s stages=%s coverage=%.2f\n",
		exp, len(rec.Spans), total.Round(time.Microsecond), staged.Round(time.Microsecond), cover)
}

// fig1 reproduces Figure 1: the navigation pane after refining to Greek
// recipes with parsley.
func fig1(n int, seed int64) {
	header("E1 / Figure 1 — navigation pane on Greek + parsley recipes")
	m := openDataset(context.Background(), "recipes", n, seed)
	defer m.Close()
	s := m.NewSession()
	apply(s, blackboard.ReplaceQuery{Query: query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
		query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Parsley")},
	)})
	pane := s.Pane()
	render.Pane(os.Stdout, pane, false)
	fmt.Println()
	render.Collection(os.Stdout, m.Graph(), s.Items(), 8)

	advisorsSeen := map[string]bool{}
	for _, sec := range pane.Sections {
		advisorsSeen[sec.Advisor] = true
	}
	fmt.Printf("CHECK fig1 items=%d constraints=%d related=%v refine=%v modify=%v history=%v\n",
		len(s.Items()), len(pane.Constraints),
		advisorsSeen[blackboard.AdvisorRelated], advisorsSeen[blackboard.AdvisorRefine],
		advisorsSeen[blackboard.AdvisorModify], advisorsSeen[blackboard.AdvisorHistory])
}

// fig2 reproduces Figure 2: the large-collection facet overview.
func fig2(n int, seed int64) {
	header("E2 / Figure 2 — facet overview of the full recipe collection")
	m := openDataset(context.Background(), "recipes", n, seed)
	defer m.Close()
	s := m.NewSession()
	apply(s, blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
	fs := s.Overview(6)
	render.Overview(os.Stdout, fs, len(s.Items()))

	// Figure 1's caption claim: common ingredients dominate the overview.
	var topIngredients []string
	for _, f := range fs {
		if f.Prop == recipes.PropIngredient {
			for _, v := range f.Values {
				topIngredients = append(topIngredients, fmt.Sprintf("%s(%d)", v.Label, v.Count))
			}
		}
	}
	fmt.Printf("CHECK fig2 facets=%d topIngredients=%v\n", len(fs), topIngredients)
}

// fig5 reproduces Figure 5: the date-range widget with query preview.
func fig5(int, int64) {
	header("E4 / Figure 5 — sent-date range widget on the inbox")
	m := openDataset(context.Background(), "inbox", 0, 0)
	defer m.Close()
	s := m.NewSession()
	apply(s, blackboard.ReplaceQuery{Query: query.NewQuery(query.Or{Ps: []query.Predicate{
		query.TypeIs(inbox.ClassMessage), query.TypeIs(inbox.ClassNewsItem),
	}})})
	h, ok := facets.NumericHistogram(m.Graph(), s.Items(), inbox.PropSent, 24)
	if !ok {
		fmt.Println("CHECK fig5 histogram=MISSING")
		return
	}
	render.Histogram(os.Stdout, "sent", h)
	// Apply a range over the middle third, as a slider drag would.
	span := h.Max - h.Min
	lo, hi := h.Min+span/3, h.Min+2*span/3
	before := len(s.Items())
	s.ApplyRange(inbox.PropSent, &lo, &hi)
	fmt.Printf("CHECK fig5 buckets=%d before=%d afterRange=%d\n", len(h.Buckets), before, len(s.Items()))
}

// fig6 reproduces Figure 6: inbox navigation with the body composition.
func fig6(int, int64) {
	header("E5 / Figure 6 — inbox navigation with body composition")
	m := openDataset(context.Background(), "inbox", 0, 0)
	defer m.Close()
	s := m.NewSession()
	apply(s, blackboard.ReplaceQuery{Query: query.NewQuery(query.Or{Ps: []query.Predicate{
		query.TypeIs(inbox.ClassMessage), query.TypeIs(inbox.ClassNewsItem),
	}})})
	pane := s.Pane()
	render.Pane(os.Stdout, pane, false)

	// The paper: suggested refining by document type, by composed body
	// attributes, and offered a sent-date range control.
	var typeRefine, bodyComposed, sentRange bool
	for _, sg := range s.Board().Suggestions() {
		switch act := sg.Action.(type) {
		case blackboard.Refine:
			switch p := act.Add.(type) {
			case query.Property:
				if p.Prop == rdf.Type {
					typeRefine = true
				}
			case query.PathProperty:
				if len(p.Path) == 2 && p.Path[0] == inbox.PropBody {
					bodyComposed = true
				}
			}
		case blackboard.ShowRange:
			if act.Prop == inbox.PropSent {
				sentRange = true
			}
		}
	}
	fmt.Printf("CHECK fig6 typeRefine=%v bodyComposed=%v sentRange=%v\n",
		typeRefine, bodyComposed, sentRange)
}

// fig7 reproduces Figure 7: the 50-states dataset as given — raw
// identifiers, and the 'cardinal' word suggestion leading to 7 states.
func fig7(int, int64) {
	header("E6 / Figure 7 — 50 states as given (no annotations)")
	g := statesGraph()
	m := open(g, core.Options{IndexAllSubjects: true})
	s := m.NewSession()
	fs := s.Overview(4)
	render.Overview(os.Stdout, fs, len(s.Items()))

	rawLabels := 0
	for _, f := range fs {
		if !f.Labeled {
			rawLabels++
		}
	}

	// Find and click the 'cardinal' bird-word suggestion.
	cardinal := 0
	for _, sg := range s.Board().Suggestions() {
		if act, ok := sg.Action.(blackboard.Refine); ok {
			if tm, ok := act.Add.(query.TermMatch); ok && tm.Display == "cardinal" {
				apply(s, sg.Action)
				cardinal = len(s.Items())
				break
			}
		}
	}
	fmt.Printf("CHECK fig7 states=%d rawLabelFacets=%d cardinalStates=%d\n",
		50, rawLabels, cardinal)
}

// fig8 reproduces Figure 8: the same dataset after label + integer
// annotations — readable labels, an area range widget, Alaska the outlier.
func fig8(int, int64) {
	header("E7 / Figure 8 — 50 states with label and value-type annotations")
	g := statesGraph()
	states.Annotate(g)
	m := open(g, core.Options{IndexAllSubjects: true})
	s := m.NewSession()
	fs := s.Overview(4)
	render.Overview(os.Stdout, fs, len(s.Items()))

	var areaRange bool
	for _, sg := range s.Board().Suggestions() {
		if act, ok := sg.Action.(blackboard.ShowRange); ok && act.Prop == states.PropArea {
			areaRange = true
			render.Histogram(os.Stdout, "area", act.Histogram)
		}
	}
	outliers := facets.Outliers(g, m.Items(), states.PropArea, 3)
	names := make([]string, len(outliers))
	for i, o := range outliers {
		if v, ok := g.Object(o, states.PropName); ok {
			names[i] = v.(rdf.Literal).Lexical
		}
	}
	fmt.Printf("CHECK fig8 areaRange=%v outliers=%v\n", areaRange, names)
}

// factbookExp reproduces the §6.1 factbook claim: shared currency and
// independence-day navigation from a country.
func factbookExp(int, int64) {
	header("E8 — CIA factbook: shared currency / independence day")
	g := factbook.Build(factbook.Config{})
	factbook.Annotate(g)
	m := open(g, core.Options{})
	s := m.NewSession()
	s.OpenItem(factbook.Country(0))
	render.Item(os.Stdout, g, factbook.Country(0))
	pane := s.Pane()
	render.Pane(os.Stdout, pane, false)

	var currencyShared, independenceShared bool
	for _, sg := range s.Board().Suggestions() {
		if sg.Group != "Sharing a property" {
			continue
		}
		if rq, ok := sg.Action.(blackboard.ReplaceQuery); ok && len(rq.Query.Terms) == 1 {
			if p, ok := rq.Query.Terms[0].(query.Property); ok {
				switch p.Prop {
				case factbook.PropCurrency:
					currencyShared = true
				case factbook.PropIndependence:
					independenceShared = true
				}
			}
		}
	}
	fmt.Printf("CHECK factbook currencyShared=%v independenceShared=%v\n",
		currencyShared, independenceShared)
}

// coursesExp reproduces the §6.1 OCW/ArtSTOR observation: an
// algorithmically significant but unreadable attribute appears among
// suggestions until hidden by annotation.
func coursesExp(int, int64) {
	header("E8b — course catalog: opaque attribute until hidden")
	countCatKey := func(hide bool) int {
		g := courses.Build(courses.Config{HideCatalogKey: hide})
		m := open(g, core.Options{})
		s := m.NewSession()
		apply(s, blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(courses.ClassCourse))})
		n := 0
		for _, sg := range s.Board().Suggestions() {
			if act, ok := sg.Action.(blackboard.Refine); ok {
				switch p := act.Add.(type) {
				case query.Property:
					if p.Prop == courses.PropCatalogKey {
						n++
					}
				case query.TermMatch:
					if p.Field == string(courses.PropCatalogKey) {
						n++
					}
				}
			}
		}
		return n
	}
	visible := countCatKey(false)
	hidden := countCatKey(true)
	fmt.Printf("CHECK courses catKeySuggestionsVisible=%d afterHideAnnotation=%d\n",
		visible, hidden)

	// Same observation on the ArtSTOR-shaped dataset: the registrar
	// accession code is machine-opaque, and the annotation advisor flags it
	// for hiding with full confidence while leaving the curated columns
	// alone.
	g := artstor.Build(artstor.Config{})
	var hideAccession, falsePositives int
	for _, pr := range annotate.Advise(g, annotate.Config{}) {
		if pr.Kind != annotate.Hide {
			continue
		}
		if pr.Prop == artstor.PropAccession && pr.Confidence >= 0.9 {
			hideAccession++
		} else if pr.Prop != artstor.PropAccession {
			falsePositives++
		}
	}
	fmt.Printf("CHECK artstor hideAccessionProposed=%d hideFalsePositives=%d\n",
		hideAccession, falsePositives)
}

// autoAnnotateExp reproduces the §7 future-work extension (E13): the
// annotation advisor upgrades the raw 50-states CSV to the Figure 8
// interface automatically — no schema expert in the loop.
func autoAnnotateExp(int, int64) {
	header("E13 — automated annotation inference (§7 future work)")
	g := statesGraph()
	proposals := annotate.Advise(g, annotate.Config{})
	for _, p := range proposals {
		fmt.Printf("  [%-10s] %s\n", p.Kind, p.Describe(g.Label))
	}
	annotate.Apply(g, proposals)

	m := open(g, core.Options{IndexAllSubjects: true})
	s := m.NewSession()
	var areaRange bool
	for _, sg := range s.Board().Suggestions() {
		if act, ok := sg.Action.(blackboard.ShowRange); ok && act.Prop == states.PropArea {
			areaRange = true
		}
	}
	labeled := 0
	for _, f := range s.Overview(3) {
		if f.Labeled {
			labeled++
		}
	}
	outliers := facets.Outliers(g, m.Items(), states.PropArea, 3)
	fmt.Printf("CHECK autoann proposals=%d areaRange=%v labeledFacets=%d outliers=%d\n",
		len(proposals), areaRange, labeled, len(outliers))
}

// Command magnet-build compiles a dataset into a persistent segment set: a
// directory of versioned, checksummed columnar files holding the full ID
// plane — interner string tables, per-predicate posting lists, text-index
// postings, vector columns — that magnet-server and magnet-eval can open
// read-only via mmap with no per-element decode.
//
// Build once, serve many: the expensive work (dataset generation, text
// analysis, vector indexing) happens here; open time at serve is
// independent of corpus size.
//
// Usage:
//
//	magnet-build -out segments/recipes [-dataset recipes] [-recipes 2000] [-seed 1]
//	magnet-build -out segments/mail -dataset inbox
//	magnet-build -out segments/custom -file data.nt
//	magnet-build -out shards/recipes -shards 4
//	magnet-build -verify segments/recipes
//
// With -shards N the output is a shard layout: N complete per-shard segment
// directories (shard-000 … shard-NNN) sharing the full index columns with
// the item universe partitioned by ids.Shard — the distribution unit for
// scatter-gather serving, reassembled by core.OpenSegmentShards.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"magnet/internal/core"
	"magnet/internal/dataload"
	"magnet/internal/segment"
)

func main() {
	dataset := flag.String("dataset", "recipes", "built-in dataset: recipes, states, factbook, inbox, artstor, courses")
	file := flag.String("file", "", "compile an N-Triples file instead of a built-in dataset")
	nRecipes := flag.Int("recipes", 2000, "recipe corpus size")
	seed := flag.Int64("seed", 1, "recipe corpus seed")
	out := flag.String("out", "", "output segment directory (required unless -verify)")
	shards := flag.Int("shards", 0, "write an N-way shard layout instead of a single segment set")
	verify := flag.String("verify", "", "verify an existing segment directory and exit")
	flag.Parse()

	if *verify != "" {
		if err := verifyDir(*verify); err != nil {
			fmt.Fprintf(os.Stderr, "magnet-build: verify %s: %v\n", *verify, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *verify)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "magnet-build: -out is required (or -verify to check an existing set)")
		os.Exit(2)
	}

	if err := build(*dataset, *file, *nRecipes, *seed, *out, *shards); err != nil {
		fmt.Fprintf(os.Stderr, "magnet-build: %v\n", err)
		os.Exit(1)
	}
}

func build(dataset, file string, nRecipes int, seed int64, out string, shards int) error {
	spec := dataload.Spec{Dataset: dataset, File: file, Recipes: nRecipes, Seed: seed}
	start := time.Now()
	g, allSubjects, err := dataload.Load(spec)
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	loadDur := time.Since(start)

	start = time.Now()
	m := core.Open(g, core.Options{IndexAllSubjects: allSubjects})
	defer m.Close()
	indexDur := time.Since(start)

	if shards > 0 {
		return buildShards(m, spec, out, shards, loadDur, indexDur)
	}

	start = time.Now()
	man, err := m.WriteSegments(out, spec.Name(), spec.Params())
	if err != nil {
		return fmt.Errorf("write: %w", err)
	}
	writeDur := time.Since(start)

	// Re-open what we just wrote and verify every checksum: a set that
	// fails its own build verification must never be served.
	start = time.Now()
	if err := verifyDir(out); err != nil {
		return fmt.Errorf("post-write verify: %w", err)
	}
	verifyDur := time.Since(start)

	var total int64
	for _, f := range man.Files {
		total += f.Bytes
	}
	fmt.Printf("%s: dataset=%s items=%d triples=%d bytes=%d files=%d\n",
		out, man.Dataset, man.Items, man.Triples, total, len(man.Files))
	fmt.Printf("  load=%s index=%s write=%s verify=%s\n", loadDur, indexDur, writeDur, verifyDur)
	return nil
}

// buildShards writes and verifies an n-way shard layout. Each shard
// directory is a complete segment set, so the same checksum verification
// runs per shard.
func buildShards(m *core.Magnet, spec dataload.Spec, out string, n int, loadDur, indexDur time.Duration) error {
	start := time.Now()
	mans, err := m.WriteSegmentShards(out, spec.Name(), spec.Params(), n)
	if err != nil {
		return fmt.Errorf("write shards: %w", err)
	}
	writeDur := time.Since(start)

	start = time.Now()
	items := 0
	var total int64
	for i, man := range mans {
		if err := verifyDir(filepath.Join(out, fmt.Sprintf("shard-%03d", i))); err != nil {
			return fmt.Errorf("post-write verify shard %d: %w", i, err)
		}
		items += man.Items
		for _, f := range man.Files {
			total += f.Bytes
		}
	}
	verifyDur := time.Since(start)

	fmt.Printf("%s: dataset=%s shards=%d items=%d triples=%d bytes=%d\n",
		out, mans[0].Dataset, n, items, mans[0].Triples, total)
	fmt.Printf("  load=%s index=%s write=%s verify=%s\n", loadDur, indexDur, writeDur, verifyDur)
	return nil
}

func verifyDir(dir string) error {
	set, err := segment.OpenDir(dir)
	if err != nil {
		return err
	}
	defer set.Close()
	return set.Verify()
}

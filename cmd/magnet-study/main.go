// Command magnet-study reproduces the paper's user study (§6.3) with
// simulated users: both directed tasks — the walnut-recipe task and the
// Mexican-menu task — run against the complete Magnet system and the
// Flamenco-like baseline, printing means next to the paper's reported
// values (2.70 vs 1.71 and 5.80 vs 4.87).
//
// Usage:
//
//	magnet-study [-users N] [-recipes N] [-seed N]
package main

import (
	"flag"
	"fmt"

	"magnet/internal/simuser"
)

// paperMeans are the §6.3.1 reported values.
var paperMeans = map[string]float64{
	"task1/complete": 2.70,
	"task1/baseline": 1.71,
	"task2/complete": 5.80,
	"task2/baseline": 4.87,
}

func main() {
	users := flag.Int("users", 18, "number of simulated participants (paper: 18)")
	nRecipes := flag.Int("recipes", 6444, "recipe corpus size (paper: 6444)")
	seed := flag.Int64("seed", 1, "study seed")
	flag.Parse()

	fmt.Printf("E11/E12 — simulated user study (%d users, %d recipes)\n\n", *users, *nRecipes)
	fmt.Println("task 1: find the aunt's walnut recipe and 2-3 related nut-free recipes")
	fmt.Println("task 2: plan a Mexican themed menu (soups/appetizers, salads, desserts)")
	fmt.Println()

	res := simuser.Run(simuser.Config{Users: *users, Recipes: *nRecipes, Seed: *seed})

	fmt.Printf("%-8s %-10s %10s %10s %8s\n", "task", "system", "measured", "paper", "Δ")
	for _, row := range res.Rows() {
		key := row.Task + "/" + string(row.System)
		paper := paperMeans[key]
		fmt.Printf("%-8s %-10s %10.2f %10.2f %+8.2f\n",
			row.Task, row.System, row.Mean, paper, row.Mean-paper)
	}

	f1 := res.Task1Complete.Mean / res.Task1Baseline.Mean
	f2 := res.Task2Complete.Mean / res.Task2Baseline.Mean
	fmt.Printf("\nfactors: task1 complete/baseline = %.2f (paper 1.58), task2 = %.2f (paper 1.19)\n", f1, f2)
	fmt.Printf("CHECK study t1c=%.2f t1b=%.2f t2c=%.2f t2b=%.2f f1=%.2f f2=%.2f\n",
		res.Task1Complete.Mean, res.Task1Baseline.Mean,
		res.Task2Complete.Mean, res.Task2Baseline.Mean, f1, f2)
}

// Command magnet-inex reproduces the paper's browsing-flexibility
// evaluation (§6.2) over an INEX-style corpus: content-only topics resolved
// through the text index, content-and-structure topics resolved through the
// vector space model's composed coordinates, and the tree-annotation
// ablation showing the paper's observed limitation ("Magnet would not
// follow multiple steps by default").
//
// Usage:
//
//	magnet-inex [-articles N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"magnet/internal/datasets/inex"
	"magnet/internal/inexeval"
)

func main() {
	articles := flag.Int("articles", 120, "corpus size in articles")
	seed := flag.Int64("seed", 1, "corpus seed")
	flag.Parse()

	fmt.Printf("E9/E10 — INEX browsing flexibility (%d articles)\n\n", *articles)

	evalOnce := func(skipTree bool) []inexeval.Result {
		c, err := inex.Build(inex.Config{Articles: *articles, Seed: *seed, SkipTreeAnnotation: skipTree})
		if err != nil {
			fmt.Fprintf(os.Stderr, "magnet-inex: %v\n", err)
			os.Exit(1)
		}
		return inexeval.Open(c).Run()
	}

	with := evalOnce(false)
	fmt.Println("With tree-shape annotation (paper's recommended configuration):")
	printResults(with)

	without := evalOnce(true)
	fmt.Println("\nWithout tree-shape annotation (the §6.2 limitation):")
	printResults(without)

	fmt.Printf("\nCHECK inex CASwith=%.2f CASwithout=%.2f COwith=%.2f COwithout=%.2f\n",
		inexeval.MeanRecall(with, inex.CAS), inexeval.MeanRecall(without, inex.CAS),
		inexeval.MeanRecall(with, inex.CO), inexeval.MeanRecall(without, inex.CO))
}

func printResults(results []inexeval.Result) {
	fmt.Printf("  %-6s %-4s %-55s %9s %7s\n", "topic", "kind", "text", "relevant", "recall")
	for _, r := range results {
		fmt.Printf("  %-6s %-4s %-55s %9d %7.2f\n",
			r.Topic.ID, r.Topic.Kind, clip(r.Topic.Text, 55), len(r.Topic.Relevant), r.Recall)
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// Command magnet-load replays concurrent simulated-user navigation sessions
// (internal/simuser) against one shared core instance and reports step
// latency and throughput. It is the serving-side load harness: the proof
// that many sessions can step concurrently against one Magnet — including
// a sharded scatter-gather one — and the source of the load-test entries in
// the committed BENCH_<date>.json snapshots.
//
// Each session is a full study task driven through core.Session (queries,
// refinements, pane assembly, facet overview), so the latencies are real
// end-to-end navigation steps, measured by the existing internal/obs step
// histograms (session.query.ns, session.pane.ns, session.overview.ns):
// the harness snapshots them before and after the run and reports the
// delta, so only this run's steps are counted.
//
// Usage:
//
//	magnet-load                                      # 200 sessions, in-memory corpus
//	magnet-load -shards 4 -parallelism 4             # sharded scatter-gather serving
//	magnet-load -segments segs/recipes               # segment-backed (auto-detects shard layouts)
//	magnet-load -sessions 40 -concurrency 8 -out ""  # short smoke run, no snapshot write
//
// With -out (default BENCH_<date>.json) the results merge into that day's
// benchmark snapshot next to the microbenchmarks, replacing any previous
// magnet-load entries for the same configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"magnet/internal/benchfmt"
	"magnet/internal/core"
	"magnet/internal/dataload"
	"magnet/internal/obs"
	"magnet/internal/simuser"
)

func main() {
	dataset := flag.String("dataset", "recipes", "built-in dataset (must be recipes-vocabulary for the study tasks)")
	nRecipes := flag.Int("recipes", 2000, "in-memory recipe corpus size")
	seed := flag.Int64("seed", 1, "corpus and session seed")
	segments := flag.String("segments", "", "open a segment directory instead of building in memory (shard layouts auto-detected)")
	shards := flag.Int("shards", 0, "scatter-gather shard count for in-memory serving (0 = unsharded)")
	parallelism := flag.Int("parallelism", 0, "core worker-pool width (0 = GOMAXPROCS)")
	sessions := flag.Int("sessions", 200, "number of simulated-user sessions to replay")
	concurrency := flag.Int("concurrency", 0, "sessions in flight at once (0 = all of them)")
	out := flag.String("out", "", "benchmark snapshot to merge results into (default BENCH_<date>.json; empty with an explicit -out= skips the write)")
	minPlanHitRate := flag.Float64("min-plan-hit-rate", -1, "fail unless the planner's delta-cache hit rate (hits+deltas over lookups) reaches this fraction; negative disables the gate")
	outSet := false
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	if err := run(*dataset, *nRecipes, *seed, *segments, *shards, *parallelism,
		*sessions, *concurrency, *out, outSet, *minPlanHitRate); err != nil {
		fmt.Fprintf(os.Stderr, "magnet-load: %v\n", err)
		os.Exit(1)
	}
}

// open builds or opens the serving instance per the flags.
func open(dataset string, nRecipes int, seed int64, segments string, shards, parallelism int) (*core.Magnet, string, error) {
	opts := core.Options{Parallelism: parallelism, Shards: shards}
	if segments != "" {
		// A shard layout has shard-000/ subdirectories; a plain segment set
		// has its manifest at the top level.
		if _, err := os.Stat(filepath.Join(segments, "shard-000")); err == nil {
			m, err := core.OpenSegmentShards(segments, opts)
			if err != nil {
				return nil, "", err
			}
			return m, fmt.Sprintf("segment shard layout %s", segments), nil
		}
		m, err := core.OpenSegments(segments, opts)
		if err != nil {
			return nil, "", err
		}
		return m, fmt.Sprintf("segment set %s", segments), nil
	}
	g, allSubjects, err := dataload.Load(dataload.Spec{Dataset: dataset, Recipes: nRecipes, Seed: seed})
	if err != nil {
		return nil, "", err
	}
	opts.IndexAllSubjects = allSubjects
	return core.Open(g, opts), fmt.Sprintf("in-memory %s corpus (%d recipes)", dataset, nRecipes), nil
}

// step is one of the session step histograms the harness reports on.
type step struct {
	name   string
	hist   *obs.Histogram
	before obs.HistSnapshot
	delta  obs.HistSnapshot
}

// planCounters snapshots the planner's delta-cache counters so the report
// covers only this run, mirroring the histogram snapshots for steps.
type planCounters struct {
	hit, miss, delta uint64
}

func snapshotPlanCounters() planCounters {
	return planCounters{
		hit:   obs.Default.Counter("plan.cache.hit").Value(),
		miss:  obs.Default.Counter("plan.cache.miss").Value(),
		delta: obs.Default.Counter("plan.cache.delta").Value(),
	}
}

// sub returns the per-run deltas against an earlier snapshot.
func (pc planCounters) sub(before planCounters) planCounters {
	return planCounters{hit: pc.hit - before.hit, miss: pc.miss - before.miss, delta: pc.delta - before.delta}
}

// hitRate is the fraction of cache lookups resolved without a from-scratch
// evaluation: exact hits plus parent deltas over all lookups. Note misses
// count every non-hit lookup, including the ones a delta then resolves, so
// lookups = hit + miss and deltas are a subset of misses.
func (pc planCounters) hitRate() float64 {
	lookups := pc.hit + pc.miss
	if lookups == 0 {
		return 0
	}
	return float64(pc.hit+pc.delta) / float64(lookups)
}

func run(dataset string, nRecipes int, seed int64, segments string, shards, parallelism, sessions, concurrency int, out string, outSet bool, minPlanHitRate float64) error {
	if sessions < 1 {
		return fmt.Errorf("-sessions must be >= 1")
	}
	if concurrency <= 0 || concurrency > sessions {
		concurrency = sessions
	}

	m, backing, err := open(dataset, nRecipes, seed, segments, shards, parallelism)
	if err != nil {
		return err
	}
	defer m.Close()
	replay := simuser.NewReplay(m)
	if _, err := replay.Target(); err != nil {
		return err
	}

	fmt.Printf("magnet-load: %s, %d sessions, %d concurrent, GOMAXPROCS=%d\n",
		backing, sessions, concurrency, runtime.GOMAXPROCS(0))

	// Snapshot the process-global step histograms so the report covers only
	// this run (Replay preparation above already stepped a few sessions' worth
	// of nothing — NewReplay itself runs no sessions, but NewSession inside
	// the workers does the all-items query that lands in session.query.ns).
	steps := []*step{
		{name: "query", hist: obs.Default.Histogram("session.query.ns")},
		{name: "pane", hist: obs.Default.Histogram("session.pane.ns")},
		{name: "overview", hist: obs.Default.Histogram("session.overview.ns")},
	}
	for _, st := range steps {
		st.before = st.hist.Snapshot()
	}
	planBefore := snapshotPlanCounters()

	// Replay: an atomic cursor hands out session indices; `concurrency`
	// workers run them, every session a fresh core.Session against the one
	// shared instance.
	var next atomic.Int64
	var found atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= sessions {
					return
				}
				found.Add(int64(replay.Session(i, seed+int64(i)*7919)))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	var combined obs.HistSnapshot
	for _, st := range steps {
		st.delta = st.hist.Snapshot().Sub(st.before)
		combined = combined.Add(st.delta)
	}
	if combined.Count == 0 {
		return fmt.Errorf("no navigation steps recorded — the replay did nothing")
	}

	qps := float64(combined.Count) / wall.Seconds()
	fmt.Printf("  %d sessions in %s: %d steps, %.1f steps/s, %d recipes found\n",
		sessions, wall.Round(time.Millisecond), combined.Count, qps, found.Load())
	for _, st := range append(steps, &step{name: "step", delta: combined}) {
		if st.delta.Count == 0 {
			continue
		}
		fmt.Printf("  %-8s count=%-6d p50=%-10s p99=%s\n", st.name, st.delta.Count,
			time.Duration(st.delta.Quantile(0.5)), time.Duration(st.delta.Quantile(0.99)))
	}
	plan := snapshotPlanCounters().sub(planBefore)
	planRate := plan.hitRate()
	if plan.hit+plan.miss > 0 {
		fmt.Printf("  plan.cache hit-rate=%.1f%% (hits=%d deltas=%d misses=%d lookups=%d)\n",
			planRate*100, plan.hit, plan.delta, plan.miss-plan.delta, plan.hit+plan.miss)
	}
	if minPlanHitRate >= 0 && planRate < minPlanHitRate {
		return fmt.Errorf("plan-cache hit rate %.3f below required %.3f", planRate, minPlanHitRate)
	}

	if outSet && out == "" {
		return nil
	}

	doc, err := benchfmt.Load(orDefault(out))
	if err != nil {
		return err
	}
	name := "BenchmarkLoadSessions/shards=" + strconv.Itoa(effectiveShards(m, shards)) +
		"/concurrency=" + strconv.Itoa(concurrency)
	entry := benchfmt.Benchmark{
		Name:       name,
		Pkg:        "magnet/cmd/magnet-load",
		Procs:      runtime.GOMAXPROCS(0),
		Iterations: int64(sessions),
		Metrics: map[string]float64{
			"steps/s":           qps,
			"p50-step-ns":       float64(combined.Quantile(0.5)),
			"p99-step-ns":       float64(combined.Quantile(0.99)),
			"p50-query-ns":      float64(steps[0].delta.Quantile(0.5)),
			"p99-query-ns":      float64(steps[0].delta.Quantile(0.99)),
			"p50-pane-ns":       float64(steps[1].delta.Quantile(0.5)),
			"p99-pane-ns":       float64(steps[1].delta.Quantile(0.99)),
			"p50-overview-ns":   float64(steps[2].delta.Quantile(0.5)),
			"p99-overview-ns":   float64(steps[2].delta.Quantile(0.99)),
			"steps":             float64(combined.Count),
			"plan-hit-rate":     planRate,
			"plan-cache-hits":   float64(plan.hit),
			"plan-cache-deltas": float64(plan.delta),
			"shards":            float64(effectiveShards(m, shards)),
			"gomaxprocs":        float64(runtime.GOMAXPROCS(0)),
			"wall-s":            wall.Seconds(),
		},
	}
	doc.Merge(entry)
	path := orDefault(out)
	if err := doc.Write(path); err != nil {
		return err
	}
	fmt.Printf("  merged %s into %s\n", name, path)
	return nil
}

// orDefault resolves the output path: empty means today's BENCH_<date>.json.
func orDefault(out string) string {
	if out != "" {
		return out
	}
	return benchfmt.New().FileName()
}

// effectiveShards reports the shard count the instance actually serves with
// (a shard-layout open forces it from the manifest, overriding the flag).
func effectiveShards(m *core.Magnet, flagShards int) int {
	if n := m.Shards(); n > 0 {
		return n
	}
	if flagShards > 0 {
		return flagShards
	}
	return 1
}

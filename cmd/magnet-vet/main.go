// Command magnet-vet runs Magnet's own static-analysis suite: named
// analyzers enforcing the repository's correctness invariants (locking
// discipline, float comparison rules in scoring code, error wrapping,
// deterministic map-iteration output, context placement, dense-ID set
// discipline in hot-path packages) with file:line diagnostics and a
// CI-friendly exit code.
//
// Usage:
//
//	magnet-vet [-list] [./... | dir]
//
// With no argument (or ./...) the whole module containing the working
// directory is checked. A directory argument checks just that package —
// handy for fixture packages under testdata. Exit status: 0 clean,
// 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"magnet/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, analyzers, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "magnet-vet: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "magnet-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// load resolves the target: a directory loads as a single package with the
// unscoped analyzer set (so every invariant applies, e.g. to fixture
// packages), anything else loads the module containing the working
// directory with the production scopes.
func load(target string) ([]*analysis.Package, []*analysis.Analyzer, error) {
	if target != "" && target != "./..." {
		info, err := os.Stat(target)
		if err != nil {
			return nil, nil, err
		}
		if !info.IsDir() {
			return nil, nil, fmt.Errorf("%s is not a directory", target)
		}
		l, err := analysis.NewLoader(target)
		if err != nil {
			return nil, nil, err
		}
		pkg, err := l.LoadDir(target, filepath.ToSlash(filepath.Clean(target)))
		if err != nil {
			return nil, nil, err
		}
		return []*analysis.Package{pkg}, analysis.Unscoped(), nil
	}

	root, err := moduleRoot()
	if err != nil {
		return nil, nil, err
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := l.LoadModule()
	return pkgs, analysis.All(), err
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

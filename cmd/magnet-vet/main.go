// Command magnet-vet runs Magnet's own static-analysis suite: named
// analyzers enforcing the repository's correctness invariants (locking
// discipline — per-package and across calls, float comparison rules in
// scoring code, error wrapping, deterministic map-iteration output, context
// placement, dense-ID set discipline, hot-path allocation freedom,
// publish-then-freeze immutability) with file:line diagnostics and a
// CI-friendly exit code.
//
// Usage:
//
//	magnet-vet [-list] [-json] [-baseline file] [-write-baseline file] [./... | dir]
//
// With no argument (or ./...) the whole module containing the working
// directory is checked. A directory argument checks just that package —
// handy for fixture packages under testdata.
//
//	-list            print the analyzers with their package scopes and exit
//	-json            emit findings as a JSON array instead of text lines
//	-baseline file   tolerate the findings recorded in file; stale entries
//	                 (matching nothing) are themselves errors
//	-write-baseline file   write the current findings to file and exit 0
//
// Exit status: 0 clean, 1 findings (or stale baseline entries),
// 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"magnet/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers with their scopes and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			scope := "(module-wide)"
			if len(a.Scope) > 0 {
				scope = strings.Join(a.Scope, ", ")
			}
			fmt.Printf("%-22s %-60s %s\n", a.Name, scope, a.Doc)
		}
		return
	}

	pkgs, analyzers, root, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "magnet-vet: %v\n", err)
		os.Exit(2)
	}
	rel := relTo(root)
	diags := analysis.Run(pkgs, analyzers)

	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, []byte(analysis.FormatBaseline(diags, rel)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "magnet-vet: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "magnet-vet: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}

	var stale []string
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "magnet-vet: %v\n", err)
			os.Exit(2)
		}
		diags, stale = analysis.ParseBaseline(data).Apply(diags, rel)
	}

	if *jsonOut {
		out := make([]analysis.DiagnosticJSON, 0, len(diags))
		for _, d := range diags {
			out = append(out, d.JSON(rel))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "magnet-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "magnet-vet: stale baseline entry (matches no finding; remove it): %s\n", e)
	}
	if len(diags) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "magnet-vet: %d finding(s), %d stale baseline entr(ies)\n", len(diags), len(stale))
		os.Exit(1)
	}
}

// relTo rewrites absolute file names to slash-separated paths relative to
// root, so output (and the committed baseline) is machine-independent.
func relTo(root string) func(string) string {
	return func(name string) string {
		if root == "" {
			return filepath.ToSlash(name)
		}
		if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(name)
	}
}

// load resolves the target: a directory loads as a single package with the
// unscoped analyzer set (so every invariant applies, e.g. to fixture
// packages), anything else loads the module containing the working
// directory with the production scopes. The third result is the path
// findings are reported relative to.
func load(target string) ([]*analysis.Package, []*analysis.Analyzer, string, error) {
	if target != "" && target != "./..." {
		info, err := os.Stat(target)
		if err != nil {
			return nil, nil, "", err
		}
		if !info.IsDir() {
			return nil, nil, "", fmt.Errorf("%s is not a directory", target)
		}
		l, err := analysis.NewLoader(target)
		if err != nil {
			return nil, nil, "", err
		}
		pkg, err := l.LoadDir(target, filepath.ToSlash(filepath.Clean(target)))
		if err != nil {
			return nil, nil, "", err
		}
		return []*analysis.Package{pkg}, analysis.Unscoped(), "", nil
	}

	root, err := moduleRoot()
	if err != nil {
		return nil, nil, "", err
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		return nil, nil, "", err
	}
	pkgs, err := l.LoadModule()
	return pkgs, analysis.All(), root, err
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

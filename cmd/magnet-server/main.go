// Command magnet-server serves Magnet's faceted navigation interface over
// HTTP — the browser-window experience of the paper's Figure 1, on any of
// the built-in datasets, an N-Triples file, or a precompiled segment set.
//
// With -segments, the server skips dataset generation and indexing
// entirely: it maps the segment files produced by magnet-build and serves
// read-only from them, with open time independent of corpus size.
//
// Operational endpoints: /debug/metrics exposes the obs registry as flat
// JSON (counters, gauges, histograms over query evaluation, the blackboard
// analysts, index caches, facet summarization, runtime telemetry, and
// startup load times) — ?format=prom switches to the Prometheus text
// exposition with histogram exemplars; /debug/traces serves the flight
// recorder (head-sampled recents plus every trace over the slow
// threshold), with /debug/traces/{id} rendering one captured trace as
// JSON or (?format=text) a span tree; -pprof additionally mounts
// net/http/pprof under /debug/pprof/.
//
// Usage:
//
//	magnet-server [-addr :8080] [-dataset recipes|states|factbook|inbox|courses]
//	              [-file data.nt] [-segments dir] [-recipes N] [-baseline]
//	              [-log-level info] [-pprof] [-trace-slow 250ms] [-trace-sample 16]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"magnet/internal/analysts"
	"magnet/internal/core"
	"magnet/internal/dataload"
	"magnet/internal/obs"
	"magnet/internal/web"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataset := flag.String("dataset", "recipes", "built-in dataset: recipes, states, factbook, inbox, courses")
	file := flag.String("file", "", "serve an N-Triples file instead of a built-in dataset")
	segments := flag.String("segments", "", "serve a precompiled segment set (directory written by magnet-build) read-only")
	nRecipes := flag.Int("recipes", 2000, "recipe corpus size")
	useBaseline := flag.Bool("baseline", false, "use the Flamenco-like baseline advisor set")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	parallelism := flag.Int("parallelism", 0, "worker pool size for the navigation pipeline (0 = GOMAXPROCS, 1 = serial)")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "flight recorder: tail-sample every trace at least this slow")
	traceSample := flag.Int("trace-sample", 16, "flight recorder: head-sample 1 in N completed traces (1 = all)")
	flag.Parse()

	obs.Records.SetSlowThreshold(*traceSlow)
	obs.Records.SetSampleEvery(*traceSample)
	stopSampler := obs.StartRuntimeSampler(10 * time.Second)
	defer stopSampler()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "magnet-server: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	opts := core.Options{SoftEmptyResults: true, Parallelism: *parallelism}
	if *useBaseline {
		opts.Analysts = analysts.BaselineSet
	}

	var m *core.Magnet
	shownDataset := *dataset
	if *segments != "" {
		var err error
		m, err = core.OpenSegments(*segments, opts)
		if err != nil {
			logger.Error("open segments failed", "dir", *segments, "err", err)
			os.Exit(1)
		}
		shownDataset = m.Segments().Manifest.Dataset
	} else {
		spec := dataload.Spec{Dataset: *dataset, File: *file, Recipes: *nRecipes}
		g, allSubjects, err := dataload.Load(spec)
		if err != nil {
			logger.Error("load failed", "err", err)
			os.Exit(1)
		}
		opts.IndexAllSubjects = allSubjects
		m = core.Open(g, opts)
	}
	defer m.Close()

	mux := http.NewServeMux()
	mux.Handle("/", web.NewServer(m, web.WithLogger(logger)))
	mux.Handle("/debug/metrics", obs.Default.Handler())
	mux.Handle("/debug/traces", obs.Records.Handler())
	mux.Handle("/debug/traces/", obs.Records.Handler())
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// Generous write timeout so -pprof profile captures (30s default)
		// fit; page handlers finish in milliseconds.
		WriteTimeout: 60 * time.Second,
		IdleTimeout:  120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "dataset", shownDataset, "items", m.NumItems(), "segments", *segments, "pprof", *withPprof)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		logger.Info("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			logger.Warn("shutdown incomplete", "err", err)
		}
	}
}

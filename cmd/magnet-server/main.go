// Command magnet-server serves Magnet's faceted navigation interface over
// HTTP — the browser-window experience of the paper's Figure 1, on any of
// the built-in datasets or an N-Triples file.
//
// Usage:
//
//	magnet-server [-addr :8080] [-dataset recipes|states|factbook|inbox|courses]
//	              [-file data.nt] [-recipes N] [-baseline]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"magnet/internal/analysts"
	"magnet/internal/core"
	"magnet/internal/datasets/artstor"
	"magnet/internal/datasets/courses"
	"magnet/internal/datasets/factbook"
	"magnet/internal/datasets/inbox"
	"magnet/internal/datasets/recipes"
	"magnet/internal/datasets/states"
	"magnet/internal/rdf"
	"magnet/internal/web"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataset := flag.String("dataset", "recipes", "built-in dataset: recipes, states, factbook, inbox, courses")
	file := flag.String("file", "", "serve an N-Triples file instead of a built-in dataset")
	nRecipes := flag.Int("recipes", 2000, "recipe corpus size")
	useBaseline := flag.Bool("baseline", false, "use the Flamenco-like baseline advisor set")
	flag.Parse()

	g, allSubjects, err := load(*dataset, *file, *nRecipes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "magnet-server: %v\n", err)
		os.Exit(1)
	}
	opts := core.Options{IndexAllSubjects: allSubjects, SoftEmptyResults: true}
	if *useBaseline {
		opts.Analysts = analysts.BaselineSet
	}
	m := core.Open(g, opts)
	fmt.Printf("magnet-server: %d items indexed; listening on %s\n", len(m.Items()), *addr)
	if err := http.ListenAndServe(*addr, web.NewServer(m)); err != nil {
		fmt.Fprintf(os.Stderr, "magnet-server: %v\n", err)
		os.Exit(1)
	}
}

func load(dataset, file string, nRecipes int) (*rdf.Graph, bool, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		g, err := rdf.ReadNTriples(f)
		return g, false, err
	}
	switch dataset {
	case "recipes":
		return recipes.Build(recipes.Config{Recipes: nRecipes}), false, nil
	case "states":
		g, err := states.Build()
		if err != nil {
			return nil, false, err
		}
		states.Annotate(g)
		return g, true, nil
	case "factbook":
		g := factbook.Build(factbook.Config{})
		factbook.Annotate(g)
		return g, false, nil
	case "inbox":
		return inbox.Build(inbox.Config{}), false, nil
	case "artstor":
		return artstor.Build(artstor.Config{HideAccession: true}), false, nil
	case "courses":
		return courses.Build(courses.Config{HideCatalogKey: true}), false, nil
	default:
		return nil, false, fmt.Errorf("unknown dataset %q", dataset)
	}
}

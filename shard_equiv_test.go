// Shard equivalence: the promise of scatter-gather serving is that sharding
// is invisible — a Magnet serving with Options.Shards = n (or opened from an
// n-way shard layout on disk) renders byte-identical output to the unsharded
// instance at every shard count. These tests replay the magnet-eval
// scenarios across shards ∈ {1, 2, 4, 7} for the in-memory and the
// segment-backed backings, mirroring segment_equiv_test.go.
package magnet_test

import (
	"path/filepath"
	"testing"

	"magnet/internal/core"
	"magnet/internal/dataload"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
)

var shardCounts = []int{1, 2, 4, 7}

// shardQueries are the rendered scenarios: the Figure 1 refined pane, the
// Figure 2 whole-collection overview, and a keyword+negation mix that
// exercises text scoring and Not under sharded evaluation.
func shardQueries() map[string]query.Query {
	return map[string]query.Query{
		"fig1": query.NewQuery(
			query.TypeIs(recipes.ClassRecipe),
			query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
			query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Parsley")},
		),
		"fig2": query.NewQuery(query.TypeIs(recipes.ClassRecipe)),
		"negation": query.NewQuery(
			query.Keyword{Text: "chicken"},
			query.Not{P: query.Property{
				Prop:  recipes.PropIngredient,
				Value: recipes.Ingredient("Walnuts"),
			}},
		),
	}
}

func TestShardEquivalenceInMemory(t *testing.T) {
	spec := dataload.Spec{Dataset: "recipes", Recipes: 200, Seed: 1}
	g, allSubjects, err := dataload.Load(spec)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	mem := core.Open(g, core.Options{IndexAllSubjects: allSubjects})
	t.Cleanup(mem.Close)

	for name, q := range shardQueries() {
		want := renderScenario(mem, q)
		for _, n := range shardCounts {
			sharded := core.Open(g, core.Options{IndexAllSubjects: allSubjects, Shards: n})
			got := renderScenario(sharded, q)
			sharded.Close()
			if got != want {
				t.Errorf("%s shards=%d: sharded render differs from unsharded\n%s",
					name, n, firstDiff(want, got))
			}
		}
	}
}

func TestShardEquivalenceSegments(t *testing.T) {
	spec := dataload.Spec{Dataset: "recipes", Recipes: 200, Seed: 1}
	mem, _ := openBoth(t, spec)

	for name, q := range shardQueries() {
		want := renderScenario(mem, q)
		for _, n := range shardCounts {
			dir := t.TempDir()
			if _, err := mem.WriteSegmentShards(dir, spec.Name(), spec.Params(), n); err != nil {
				t.Fatalf("WriteSegmentShards n=%d: %v", n, err)
			}
			sharded, err := core.OpenSegmentShards(dir, core.Options{})
			if err != nil {
				t.Fatalf("OpenSegmentShards n=%d: %v", n, err)
			}
			if got := sharded.Shards(); n > 1 && got != n {
				t.Errorf("Shards() = %d, want %d", got, n)
			}
			got := renderScenario(sharded, q)
			sharded.Close()
			if got != want {
				t.Errorf("%s shards=%d: shard-layout render differs from in-memory\n%s",
					name, n, firstDiff(want, got))
			}
		}
	}
}

// TestShardLayoutRoundTrip checks the shard layout's manifests partition
// the item universe exactly: reassembled item count equals the source.
func TestShardLayoutRoundTrip(t *testing.T) {
	spec := dataload.Spec{Dataset: "recipes", Recipes: 120, Seed: 3}
	g, allSubjects, err := dataload.Load(spec)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	mem := core.Open(g, core.Options{IndexAllSubjects: allSubjects})
	t.Cleanup(mem.Close)

	dir := filepath.Join(t.TempDir(), "layout")
	const n = 4
	mans, err := mem.WriteSegmentShards(dir, spec.Name(), spec.Params(), n)
	if err != nil {
		t.Fatalf("WriteSegmentShards: %v", err)
	}
	if len(mans) != n {
		t.Fatalf("wrote %d manifests, want %d", len(mans), n)
	}
	total := 0
	for i, man := range mans {
		if man.Shard != i || man.Shards != n {
			t.Errorf("manifest %d claims shard %d of %d", i, man.Shard, man.Shards)
		}
		total += man.Items
	}
	if total != mem.NumItems() {
		t.Errorf("shard item counts sum to %d, want %d", total, mem.NumItems())
	}

	sh, err := core.OpenSegmentShards(dir, core.Options{})
	if err != nil {
		t.Fatalf("OpenSegmentShards: %v", err)
	}
	defer sh.Close()
	if sh.NumItems() != mem.NumItems() {
		t.Errorf("NumItems: layout=%d mem=%d", sh.NumItems(), mem.NumItems())
	}
}

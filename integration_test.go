// Integration tests: full user journeys across every module, from raw data
// to rendered panes — the paths the paper's walkthrough (§3) and evaluation
// (§6) describe, stitched end to end.
package magnet_test

import (
	"bytes"
	"strings"
	"testing"

	"magnet/internal/annotate"
	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/inbox"
	"magnet/internal/datasets/recipes"
	"magnet/internal/datasets/states"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/render"
	"magnet/internal/xmlconv"
)

// TestJourneyRecipes walks the paper's §3 interface story: keyword search →
// facet refinement → similar items → group exclusion → history undo.
func TestJourneyRecipes(t *testing.T) {
	m := recipeMagnet() // shared bench fixture, 2000 recipes
	s := m.NewSession()

	// §3.1: "a search may often be initiated by specifying keywords".
	s.Search("walnut")
	if len(s.Items()) == 0 {
		t.Fatal("keyword search empty")
	}

	// Refine by cuisine from an actual pane suggestion.
	pane := s.Pane()
	var refined bool
	for _, sg := range pane.AllSuggestions() {
		act, ok := sg.Action.(blackboard.Refine)
		if !ok {
			continue
		}
		if p, ok := act.Add.(query.Property); ok && p.Prop == recipes.PropCuisine {
			before := len(s.Items())
			if err := s.ApplySuggestion(sg); err != nil {
				t.Fatal(err)
			}
			if len(s.Items()) == 0 || len(s.Items()) >= before {
				t.Fatalf("cuisine refinement %d → %d", before, len(s.Items()))
			}
			refined = true
			break
		}
	}
	if !refined {
		t.Fatal("no cuisine suggestion offered")
	}

	// Open an item, follow Similar by Content, exclude the nut group.
	item := s.Items()[0]
	s.OpenItem(item)
	sim, ok := s.Pane().Find("Overall (textual and structural)")
	if !ok {
		t.Fatal("similar-by-content suggestion missing")
	}
	if err := s.ApplySuggestion(sim); err != nil {
		t.Fatal(err)
	}
	if !s.Current().Fixed {
		t.Fatal("similar items should be a fixed collection")
	}
	s.Refine(query.PathProperty{
		Path:  []rdf.IRI{recipes.PropIngredient, recipes.PropGroup},
		Value: recipes.Group("Nuts"),
	}, blackboard.Exclude)
	for _, it := range s.Items() {
		for _, ing := range m.Graph().Objects(it, recipes.PropIngredient) {
			if m.Graph().Has(ing.(rdf.IRI), recipes.PropGroup, recipes.Group("Nuts")) {
				t.Fatalf("%s still nutty", it)
			}
		}
	}

	// History knows where we've been.
	if s.History().Len() < 4 {
		t.Errorf("history too short: %d", s.History().Len())
	}

	// The pane renders without error and mentions the advisors.
	var buf bytes.Buffer
	render.Pane(&buf, s.Pane(), true)
	if !strings.Contains(buf.String(), "──") {
		t.Error("rendered pane missing advisor sections")
	}
}

// TestJourneyStatesAutoAnnotate goes raw CSV → automatic annotations →
// range navigation, the E6+E13 path end to end.
func TestJourneyStatesAutoAnnotate(t *testing.T) {
	g, err := states.Build()
	if err != nil {
		t.Fatal(err)
	}
	annotate.Apply(g, annotate.Advise(g, annotate.Config{}))
	m := core.Open(g, core.Options{IndexAllSubjects: true})
	s := m.NewSession()

	// The 'cardinal' refinement still works post-annotation.
	found := false
	for _, sg := range s.Board().Suggestions() {
		if act, ok := sg.Action.(blackboard.Refine); ok {
			if tm, ok := act.Add.(query.TermMatch); ok && tm.Display == "cardinal" {
				s.ApplySuggestion(sg)
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("cardinal suggestion missing")
	}
	if len(s.Items()) != 7 {
		t.Fatalf("cardinal states = %d", len(s.Items()))
	}

	// Numeric range over the auto-typed area column.
	s.GoHome()
	lo := 100000.0
	s.ApplyRange(states.PropArea, &lo, nil)
	if len(s.Items()) == 0 || len(s.Items()) >= 50 {
		t.Fatalf("big states = %d", len(s.Items()))
	}
	for _, it := range s.Items() {
		o, _ := m.Graph().Object(it, states.PropArea)
		if f, _ := o.(rdf.Literal).Float(); f < 100000 {
			t.Errorf("%s area %v below bound", it, f)
		}
	}
}

// TestJourneyInboxComposition exercises Figure 6 end to end: composed
// body·creator refinement through an actual suggestion.
func TestJourneyInboxComposition(t *testing.T) {
	g := inbox.Build(inbox.Config{})
	m := core.Open(g, core.Options{})
	s := m.NewSession()
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.Or{Ps: []query.Predicate{
		query.TypeIs(inbox.ClassMessage), query.TypeIs(inbox.ClassNewsItem),
	}})})
	before := len(s.Items())

	var applied bool
	for _, sg := range s.Board().Suggestions() {
		act, ok := sg.Action.(blackboard.Refine)
		if !ok {
			continue
		}
		pp, ok := act.Add.(query.PathProperty)
		if !ok || len(pp.Path) != 2 || pp.Path[0] != inbox.PropBody || pp.Path[1] != inbox.PropCreator {
			continue
		}
		if err := s.ApplySuggestion(sg); err != nil {
			t.Fatal(err)
		}
		// Every remaining mail's body was created by the suggested person.
		for _, it := range s.Items() {
			body, _ := m.Graph().Object(it, inbox.PropBody)
			if !m.Graph().Has(body.(rdf.IRI), inbox.PropCreator, pp.Value) {
				t.Fatalf("%s body creator mismatch", it)
			}
		}
		applied = true
		break
	}
	if !applied {
		t.Fatal("no composed body·creator suggestion")
	}
	if len(s.Items()) == 0 || len(s.Items()) >= before {
		t.Fatalf("composition refinement %d → %d", before, len(s.Items()))
	}
}

// TestJourneyNTriplesRoundTrip serializes a dataset, re-reads it, and
// verifies navigation still works identically (persistence path).
func TestJourneyNTriplesRoundTrip(t *testing.T) {
	g := recipes.Build(recipes.Config{Recipes: 120, Seed: 1})
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := rdf.ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round trip %d → %d triples", g.Len(), g2.Len())
	}
	m1 := core.Open(g, core.Options{})
	m2 := core.Open(g2, core.Options{})
	q := query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Italian")},
	)
	a := m1.Engine().Evaluate(q)
	b := m2.Engine().Evaluate(q)
	if len(a) != len(b) {
		t.Fatalf("query results differ after round trip: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestJourneyXMLNavigation converts a small XML document and navigates the
// resulting tree-shaped graph with composed suggestions.
func TestJourneyXMLNavigation(t *testing.T) {
	doc := `<library>
  <book genre="fiction"><title>The Turn of the Screw</title><author><name>Henry James</name></author></book>
  <book genre="fiction"><title>The Portrait of a Lady</title><author><name>Henry James</name></author></book>
  <book genre="cyberpunk"><title>Neuromancer</title><author><name>William Gibson</name></author></book>
</library>`
	const ns = "http://e/xml#"
	g := rdf.NewGraph()
	if _, err := xmlconv.Convert(g, strings.NewReader(doc), xmlconv.Options{NS: ns}); err != nil {
		t.Fatal(err)
	}
	m := core.Open(g, core.Options{})
	s := m.NewSession()
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(
		query.TypeIs(xmlconv.ElementClass(ns, "book")))})
	if len(s.Items()) != 3 {
		t.Fatalf("books = %d", len(s.Items()))
	}
	// The genre attribute (a string) surfaces as a word-term refinement; a
	// composed coordinate exists because XML conversion marks the graph
	// tree-shaped.
	var genreSg blackboard.Suggestion
	var sawGenre, sawComposed bool
	for _, sg := range s.Board().Suggestions() {
		if act, ok := sg.Action.(blackboard.Refine); ok {
			switch p := act.Add.(type) {
			case query.TermMatch:
				if p.Field == string(xmlconv.Prop(ns, "genre")) && p.Display == "fiction" {
					sawGenre, genreSg = true, sg
				}
			case query.PathProperty:
				if len(p.Path) >= 2 {
					sawComposed = true
				}
			}
		}
	}
	if !sawGenre {
		t.Fatal("genre word refinement missing")
	}
	if !sawComposed {
		t.Error("composed refinement missing on tree-shaped data")
	}
	// Applying the genre suggestion narrows to the two fiction books.
	if err := s.ApplySuggestion(genreSg); err != nil {
		t.Fatal(err)
	}
	if len(s.Items()) != 2 {
		t.Errorf("fiction books = %d, want 2", len(s.Items()))
	}
}

// TestJourneySessionIsolation: two sessions over one Magnet do not leak
// state into each other.
func TestJourneySessionIsolation(t *testing.T) {
	m := recipeMagnet()
	s1 := m.NewSession()
	s2 := m.NewSession()
	s1.Search("walnut")
	if len(s2.Items()) != len(m.Items()) {
		t.Error("session 2 saw session 1's query")
	}
	s2.OpenItem(m.Items()[0])
	if s1.Current().IsItem() {
		t.Error("session 1 saw session 2's navigation")
	}
	if s1.History().Len() == s2.History().Len() {
		// Both have 2 visits (start + action) — fine; check keys differ.
		if s1.Current().Key() == s2.Current().Key() {
			t.Error("sessions share current view")
		}
	}
}

// Parallel-pipeline benchmarks: the tentpole fan-out seams (facet
// overview, similarity scan, batch indexing, navigation pane) measured at
// fixed worker counts. Run via `make bench-parallel` or:
//
//	go test -bench='^BenchmarkParallel' -benchmem
//
// Worker counts cover the serial oracle (1), the EXPERIMENTS.md reference
// point (4), and the machine width (GOMAXPROCS, when distinct). One graph
// and one Magnet per worker count are shared across all benchmarks so
// sub-benchmarks measure the pipeline, not corpus construction.
//
// Caveat for reading committed snapshots: on a single-core container
// (GOMAXPROCS=1) the workers axis measures coordination overhead, not
// speedup — workers=4 cannot beat workers=1 without a second core. Every
// sub-benchmark therefore reports gomaxprocs (and the sharded ones their
// shard count) as metrics, so BENCH_<date>.json entries are
// self-describing about the machine shape they ran on.
package magnet_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/inbox"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
)

// reportEnv records the machine shape and serving layout on the
// sub-benchmark, so snapshot entries carry their own context.
func reportEnv(b *testing.B, shards int) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	b.ReportMetric(float64(shards), "shards")
}

// workerCounts returns the benchmark's worker-count axis: 1, 4 and
// GOMAXPROCS, deduplicated.
func workerCounts() []int {
	counts := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		counts = append(counts, g)
	}
	return counts
}

var (
	parMu      sync.Mutex
	parRecipes map[int]*core.Magnet
	parInboxes map[int]*core.Magnet
)

// parallelRecipeMagnet returns the recipes@benchCorpusSize Magnet with a
// width-w pool, built once per width.
func parallelRecipeMagnet(w int) *core.Magnet {
	parMu.Lock()
	defer parMu.Unlock()
	if parRecipes == nil {
		parRecipes = make(map[int]*core.Magnet)
	}
	m, ok := parRecipes[w]
	if !ok {
		g := recipes.Build(recipes.Config{Recipes: benchCorpusSize, Seed: 1})
		m = core.Open(g, core.Options{Parallelism: w})
		parRecipes[w] = m
	}
	return m
}

func parallelInboxMagnet(w int) *core.Magnet {
	parMu.Lock()
	defer parMu.Unlock()
	if parInboxes == nil {
		parInboxes = make(map[int]*core.Magnet)
	}
	m, ok := parInboxes[w]
	if !ok {
		m = core.Open(inbox.Build(inbox.Config{}), core.Options{Parallelism: w})
		parInboxes[w] = m
	}
	return m
}

// BenchmarkParallelFacetOverview: E2's facet overview (sharded
// per-attribute aggregation) per worker count.
func BenchmarkParallelFacetOverview(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m := parallelRecipeMagnet(w)
			s := m.NewSession()
			s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
			b.ResetTimer()
			var nf int
			for i := 0; i < b.N; i++ {
				nf = len(s.Overview(6))
			}
			b.ReportMetric(float64(nf), "facets")
			reportEnv(b, 0)
		})
	}
}

// BenchmarkParallelSimilarToItem: P2's top-20 neighbour scan (chunked
// candidate scoring) per worker count.
func BenchmarkParallelSimilarToItem(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m := parallelRecipeMagnet(w)
			item := m.Graph().SubjectsOfType(recipes.ClassRecipe)[42]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Model().SimilarToItem(item, 20)
			}
			reportEnv(b, 0)
		})
	}
}

// BenchmarkParallelIndexAll: P1's batch (re)indexing (parallel
// vectorization) per worker count.
func BenchmarkParallelIndexAll(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m := parallelRecipeMagnet(w)
			items := m.Items()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Model().IndexAll(items)
			}
			b.ReportMetric(float64(len(items)), "items")
			reportEnv(b, 0)
		})
	}
}

// BenchmarkParallelInboxPane: E5's navigation pane (parallel analyst
// waves) per worker count.
func BenchmarkParallelInboxPane(b *testing.B) {
	for _, w := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			m := parallelInboxMagnet(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := m.NewSession()
				s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.Or{Ps: []query.Predicate{
					query.TypeIs(inbox.ClassMessage), query.TypeIs(inbox.ClassNewsItem),
				}})})
				s.Pane()
			}
			reportEnv(b, 0)
		})
	}
}

// shardedMagnets holds one recipes Magnet per scatter-gather shard count
// (pool width fixed at 4, the EXPERIMENTS.md reference point).
var shardedMagnets map[int]*core.Magnet

func shardedRecipeMagnet(shards int) *core.Magnet {
	parMu.Lock()
	defer parMu.Unlock()
	if shardedMagnets == nil {
		shardedMagnets = make(map[int]*core.Magnet)
	}
	m, ok := shardedMagnets[shards]
	if !ok {
		g := recipes.Build(recipes.Config{Recipes: benchCorpusSize, Seed: 1})
		m = core.Open(g, core.Options{Parallelism: 4, Shards: shards})
		shardedMagnets[shards] = m
	}
	return m
}

// BenchmarkShardedQueryStep: one full navigation query step (evaluation +
// view assembly) across the scatter-gather shard axis. shards=0 is the
// unsharded reference; the sharded runs must return byte-identical views
// (asserted by shard_equiv_test.go), so this measures pure scatter-gather
// overhead/benefit.
func BenchmarkShardedQueryStep(b *testing.B) {
	for _, n := range []int{0, 2, 4, 7} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			m := shardedRecipeMagnet(n)
			q := query.NewQuery(
				query.TypeIs(recipes.ClassRecipe),
				query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
			)
			s := m.NewSession()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Apply(blackboard.ReplaceQuery{Query: q})
			}
			reportEnv(b, n)
		})
	}
}

// BenchmarkShardedOverview: the facet overview across the shard axis —
// per-shard summarize plus the count merge, against the single-pass
// reference at shards=0.
func BenchmarkShardedOverview(b *testing.B) {
	for _, n := range []int{0, 2, 4, 7} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			m := shardedRecipeMagnet(n)
			s := m.NewSession()
			s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Overview(6)
			}
			reportEnv(b, n)
		})
	}
}

// Benchmark harness regenerating every figure and evaluation result of the
// paper (see DESIGN.md's experiment index E1–E12) plus performance and
// ablation benchmarks (P1–P6 and the design-choice ablations). Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports domain metrics via b.ReportMetric where the paper
// makes a quantitative or qualitative claim, so `go test -bench` output is
// directly comparable with EXPERIMENTS.md.
package magnet_test

import (
	"io"
	"sync"
	"testing"

	"magnet/internal/annotate"
	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/factbook"
	"magnet/internal/datasets/inbox"
	"magnet/internal/datasets/inex"
	"magnet/internal/datasets/recipes"
	"magnet/internal/datasets/states"
	"magnet/internal/facets"
	"magnet/internal/index"
	"magnet/internal/inexeval"
	"magnet/internal/qlang"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/render"
	"magnet/internal/schema"
	"magnet/internal/simuser"
	"magnet/internal/vsm"
)

// benchCorpusSize is the paper's full 6,444-recipe corpus, so P and E
// benchmark numbers are directly comparable with EXPERIMENTS.md and the
// BENCH_*.json trajectory.
const benchCorpusSize = 6444

var (
	recipeOnce sync.Once
	recipeM    *core.Magnet

	inboxOnce sync.Once
	inboxM    *core.Magnet

	statesOnce sync.Once
	statesM    *core.Magnet

	inexOnce   sync.Once
	inexSys    *inexeval.System
	inexNoTree *inexeval.System

	studyOnce sync.Once
	study     *simuser.Study
)

func recipeMagnet() *core.Magnet {
	recipeOnce.Do(func() {
		g := recipes.Build(recipes.Config{Recipes: benchCorpusSize, Seed: 1})
		recipeM = core.Open(g, core.Options{})
	})
	return recipeM
}

func inboxMagnet() *core.Magnet {
	inboxOnce.Do(func() {
		inboxM = core.Open(inbox.Build(inbox.Config{}), core.Options{})
	})
	return inboxM
}

func statesMagnet() *core.Magnet {
	statesOnce.Do(func() {
		g, err := states.Build()
		if err != nil {
			panic(err) // test-only helper outside any *testing.B
		}
		states.Annotate(g)
		statesM = core.Open(g, core.Options{IndexAllSubjects: true})
	})
	return statesM
}

func inexSystems(b *testing.B) (*inexeval.System, *inexeval.System) {
	inexOnce.Do(func() {
		c, err := inex.Build(inex.Config{Articles: 120})
		if err != nil {
			b.Fatal(err)
		}
		inexSys = inexeval.Open(c)
		c2, err := inex.Build(inex.Config{Articles: 120, SkipTreeAnnotation: true})
		if err != nil {
			b.Fatal(err)
		}
		inexNoTree = inexeval.Open(c2)
	})
	return inexSys, inexNoTree
}

func studyEnv() *simuser.Study {
	studyOnce.Do(func() {
		study = simuser.Prepare(simuser.Config{Recipes: benchCorpusSize})
	})
	return study
}

func greekParsleyQuery() query.Query {
	return query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
		query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Parsley")},
	)
}

// ---------------------------------------------------------------- E1–E8 --

// BenchmarkFig1NavigationPane (E1): evaluate the Figure 1 query and build
// the full navigation pane (all analysts + advisor selection).
func BenchmarkFig1NavigationPane(b *testing.B) {
	m := recipeMagnet()
	b.ResetTimer()
	var suggestions int
	for i := 0; i < b.N; i++ {
		s := m.NewSession()
		s.Apply(blackboard.ReplaceQuery{Query: greekParsleyQuery()})
		pane := s.Pane()
		suggestions = len(pane.AllSuggestions())
	}
	b.ReportMetric(float64(suggestions), "suggestions")
}

// BenchmarkFig2FacetOverview (E2): the large-collection facet overview over
// the full recipe collection.
func BenchmarkFig2FacetOverview(b *testing.B) {
	m := recipeMagnet()
	s := m.NewSession()
	s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
	b.ResetTimer()
	var nf int
	for i := 0; i < b.N; i++ {
		nf = len(s.Overview(6))
	}
	b.ReportMetric(float64(nf), "facets")
}

// BenchmarkFig4Vectorize (E3): building one item's semistructured vector
// (Figure 3's graph → Figure 4's vector).
func BenchmarkFig4Vectorize(b *testing.B) {
	m := recipeMagnet()
	item := m.Graph().SubjectsOfType(recipes.ClassRecipe)[0]
	b.ResetTimer()
	var coords int
	for i := 0; i < b.N; i++ {
		coords = len(m.Model().Vectorize(item))
	}
	b.ReportMetric(float64(coords), "coords")
}

// BenchmarkFig5RangeQuery (E4): the Figure 5 date-range selection — build
// the preview histogram and evaluate the range predicate.
func BenchmarkFig5RangeQuery(b *testing.B) {
	m := inboxMagnet()
	s := m.NewSession()
	items := s.Items()
	b.ResetTimer()
	var matched int
	for i := 0; i < b.N; i++ {
		h, ok := facets.NumericHistogram(m.Graph(), items, inbox.PropSent, 24)
		if !ok {
			b.Fatal("no histogram")
		}
		span := h.Max - h.Min
		set := query.Between(inbox.PropSent, h.Min+span/3, h.Min+2*span/3).Eval(m.Engine())
		matched = set.Len()
	}
	b.ReportMetric(float64(matched), "matched")
}

// BenchmarkFig6InboxPane (E5): the inbox navigation pane, including the
// composed body·{type,content,creator,date} suggestions.
func BenchmarkFig6InboxPane(b *testing.B) {
	m := inboxMagnet()
	b.ResetTimer()
	var composed int
	for i := 0; i < b.N; i++ {
		s := m.NewSession()
		s.Apply(blackboard.ReplaceQuery{Query: query.NewQuery(query.Or{Ps: []query.Predicate{
			query.TypeIs(inbox.ClassMessage), query.TypeIs(inbox.ClassNewsItem),
		}})})
		composed = 0
		for _, sg := range s.Board().Suggestions() {
			if act, ok := sg.Action.(blackboard.Refine); ok {
				if pp, ok := act.Add.(query.PathProperty); ok && pp.Path[0] == inbox.PropBody {
					composed++
				}
			}
		}
	}
	b.ReportMetric(float64(composed), "composedSuggestions")
}

// BenchmarkFig7CardinalStates (E6): the unannotated 50-states word
// refinement — find and apply the 'cardinal' term constraint.
func BenchmarkFig7CardinalStates(b *testing.B) {
	m := statesMagnet()
	b.ResetTimer()
	var cardinal int
	for i := 0; i < b.N; i++ {
		set := query.TermMatch{Term: "cardin", Field: string(states.PropBird)}.Eval(m.Engine())
		cardinal = set.Len()
	}
	if cardinal != 7 {
		b.Fatalf("cardinal states = %d, want 7", cardinal)
	}
	b.ReportMetric(float64(cardinal), "cardinalStates")
}

// BenchmarkFig8AreaOutliers (E7): the annotated states' area statistics —
// histogram plus outlier detection (Alaska).
func BenchmarkFig8AreaOutliers(b *testing.B) {
	m := statesMagnet()
	items := m.Items()
	b.ResetTimer()
	var outliers int
	for i := 0; i < b.N; i++ {
		if _, ok := facets.NumericHistogram(m.Graph(), items, states.PropArea, 12); !ok {
			b.Fatal("no histogram")
		}
		outliers = len(facets.Outliers(m.Graph(), items, states.PropArea, 3))
	}
	b.ReportMetric(float64(outliers), "outliers")
}

// BenchmarkFactbookSharedProperty (E8): shared-currency/-independence-day
// suggestions from a country item view.
func BenchmarkFactbookSharedProperty(b *testing.B) {
	g := factbook.Build(factbook.Config{})
	factbook.Annotate(g)
	m := core.Open(g, core.Options{})
	b.ResetTimer()
	var shared int
	for i := 0; i < b.N; i++ {
		s := m.NewSession()
		s.OpenItem(factbook.Country(0))
		shared = 0
		for _, sg := range s.Board().Suggestions() {
			if sg.Group == "Sharing a property" {
				shared++
			}
		}
	}
	b.ReportMetric(float64(shared), "sharedSuggestions")
}

// --------------------------------------------------------------- E9–E10 --

// BenchmarkInexCAS (E9): content-and-structure topics through composed
// coordinates; reports mean recall with the tree annotation.
func BenchmarkInexCAS(b *testing.B) {
	sys, _ := inexSystems(b)
	b.ResetTimer()
	var recall float64
	for i := 0; i < b.N; i++ {
		recall = inexeval.MeanRecall(sys.Run(), inex.CAS)
	}
	b.ReportMetric(recall, "meanRecall")
}

// BenchmarkInexCO (E10): content-only topics through the text index.
func BenchmarkInexCO(b *testing.B) {
	sys, _ := inexSystems(b)
	b.ResetTimer()
	var recall float64
	for i := 0; i < b.N; i++ {
		recall = inexeval.MeanRecall(sys.Run(), inex.CO)
	}
	b.ReportMetric(recall, "meanRecall")
}

// ------------------------------------------------------------- E11–E12 --

// BenchmarkStudyTask1 (E11): one simulated participant running the walnut
// task on each system; reports the complete-system mean over the bench run.
func BenchmarkStudyTask1(b *testing.B) {
	st := studyEnv()
	b.ResetTimer()
	sumC, sumB := 0, 0
	for i := 0; i < b.N; i++ {
		seed := int64(i)*7919 + 1
		sumC += st.RunTask1(simuser.Complete, seed)
		sumB += st.RunTask1(simuser.Baseline, seed)
	}
	b.ReportMetric(float64(sumC)/float64(b.N), "complete")
	b.ReportMetric(float64(sumB)/float64(b.N), "baseline")
}

// BenchmarkStudyTask2 (E12): one simulated participant running the
// Mexican-menu task on each system.
func BenchmarkStudyTask2(b *testing.B) {
	st := studyEnv()
	b.ResetTimer()
	sumC, sumB := 0, 0
	for i := 0; i < b.N; i++ {
		seed := int64(i)*104729 + 7
		sumC += st.RunTask2(simuser.Complete, seed)
		sumB += st.RunTask2(simuser.Baseline, seed)
	}
	b.ReportMetric(float64(sumC)/float64(b.N), "complete")
	b.ReportMetric(float64(sumB)/float64(b.N), "baseline")
}

// --------------------------------------------------------------- P1–P6 --

// BenchmarkIndexAll (P1): indexing throughput — (re)building every item
// vector of the corpus (§5.2's "indexing the data in advance").
func BenchmarkIndexAll(b *testing.B) {
	m := recipeMagnet()
	items := m.Items()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Model().IndexAll(items)
	}
	b.ReportMetric(float64(len(items)), "items")
}

// BenchmarkSimilarToItem (P2): top-20 nearest neighbours of one item.
func BenchmarkSimilarToItem(b *testing.B) {
	m := recipeMagnet()
	item := m.Graph().SubjectsOfType(recipes.ClassRecipe)[42]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Model().SimilarToItem(item, 20)
	}
}

// BenchmarkCentroidRefinement (P3): collection centroid plus refinement
// term extraction (§5.3) over a ~100-recipe collection.
func BenchmarkCentroidRefinement(b *testing.B) {
	m := recipeMagnet()
	coll := m.Engine().Evaluate(query.NewQuery(
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Model().RefinementCoords(coll, 40, nil)
	}
	b.ReportMetric(float64(len(coll)), "collection")
}

// BenchmarkQueryConjunction (P4): three-constraint conjunctive evaluation.
func BenchmarkQueryConjunction(b *testing.B) {
	m := recipeMagnet()
	q := greekParsleyQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Engine().Evaluate(q)
	}
}

// BenchmarkQueryEval (P5): the set-algebra workload behind every
// navigation step — a conjunction mixing disjunction, negation and a
// one-sided range, evaluated over the full recipes@6444 corpus.
func BenchmarkQueryEval(b *testing.B) {
	m := recipeMagnet()
	q := query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Or{Ps: []query.Predicate{
			query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
			query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Italian")},
		}},
		query.Not{P: query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Walnuts")}},
		query.AtLeast(recipes.PropServings, 4),
	)
	e := m.Engine()
	b.ResetTimer()
	var matched int
	for i := 0; i < b.N; i++ {
		matched = len(e.Evaluate(q))
	}
	b.ReportMetric(float64(matched), "matched")
}

// BenchmarkTextSearch (P5b): ranked keyword retrieval over the corpus.
func BenchmarkTextSearch(b *testing.B) {
	m := recipeMagnet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TextIndex().Search("walnut salad", index.AnyField, 20)
	}
}

// BenchmarkRenderPane (P6): rendering a full pane to text.
func BenchmarkRenderPane(b *testing.B) {
	m := recipeMagnet()
	s := m.NewSession()
	s.Apply(blackboard.ReplaceQuery{Query: greekParsleyQuery()})
	pane := s.Pane()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render.Pane(io.Discard, pane, true)
	}
}

// ------------------------------------------------------------ ablations --

func ablationCorpus() (*rdf.Graph, []rdf.IRI) {
	g := recipes.Build(recipes.Config{Recipes: 500, Seed: 1})
	m := core.Open(g, core.Options{})
	return g, m.Items()
}

// BenchmarkAblationCompositions compares IndexAll with and without §5.1
// attribute compositions (the composed ingredient·group coordinates).
func BenchmarkAblationCompositions(b *testing.B) {
	g, items := ablationCorpus()
	for _, cfg := range []struct {
		name string
		opts vsm.Options
	}{
		{"on", vsm.Options{}},
		{"off", vsm.Options{DisableCompositions: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			model := vsm.New(g, schemaOf(g), cfg.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.IndexAll(items)
			}
		})
	}
}

// BenchmarkAblationPerAttrNorm compares §5.2 per-attribute normalization
// against raw counts.
func BenchmarkAblationPerAttrNorm(b *testing.B) {
	g, items := ablationCorpus()
	for _, cfg := range []struct {
		name string
		opts vsm.Options
	}{
		{"normalized", vsm.Options{}},
		{"raw", vsm.Options{DisablePerAttributeNorm: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			model := vsm.New(g, schemaOf(g), cfg.opts)
			model.IndexAll(items)
			item := items[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.SimilarToItem(item, 10)
			}
		})
	}
}

// BenchmarkAblationNumericEncoding compares §5.4's unit-circle encoding
// against raw numeric coordinates.
func BenchmarkAblationNumericEncoding(b *testing.B) {
	g, items := ablationCorpus()
	for _, cfg := range []struct {
		name string
		opts vsm.Options
	}{
		{"unitCircle", vsm.Options{}},
		{"rawValue", vsm.Options{RawNumeric: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			model := vsm.New(g, schemaOf(g), cfg.opts)
			model.IndexAll(items)
			item := items[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model.SimilarToItem(item, 10)
			}
		})
	}
}

// BenchmarkAblationTreeComposition (the §6.2 ablation): CAS recall with and
// without the tree-shape annotation.
func BenchmarkAblationTreeComposition(b *testing.B) {
	with, without := inexSystems(b)
	b.Run("with", func(b *testing.B) {
		var r float64
		for i := 0; i < b.N; i++ {
			r = inexeval.MeanRecall(with.Run(), inex.CAS)
		}
		b.ReportMetric(r, "meanRecall")
	})
	b.Run("without", func(b *testing.B) {
		var r float64
		for i := 0; i < b.N; i++ {
			r = inexeval.MeanRecall(without.Run(), inex.CAS)
		}
		b.ReportMetric(r, "meanRecall")
	})
}

// BenchmarkAblationRefinementWeighting compares §5.3 tf·idf refinement
// ranking against raw-frequency ranking (which lets universal coordinates
// like type=Recipe dominate).
func BenchmarkAblationRefinementWeighting(b *testing.B) {
	m := recipeMagnet()
	coll := m.Engine().Evaluate(query.NewQuery(
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")}))
	b.Run("tfidf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Model().RefinementCoords(coll, 20, nil)
		}
	})
	b.Run("rawFrequency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rawFrequencyRefinements(m, coll, 20)
		}
	})
}

// rawFrequencyRefinements is the ablated §5.3: sum raw coordinate
// frequencies over the collection and take the top terms — no idf, no
// normalization.
func rawFrequencyRefinements(m *core.Magnet, coll []rdf.IRI, k int) []index.TermWeight {
	sums := make(map[string]float64)
	for _, it := range coll {
		for term, f := range m.Model().Vectorize(it) {
			sums[term] += f
		}
	}
	return index.TopTerms(sums, k, nil)
}

func schemaOf(g *rdf.Graph) *schema.Store { return schema.NewStore(g) }

// ----------------------------------------------------------- extensions --

// BenchmarkAutoAnnotate (E13): the §7 future-work annotation advisor over
// the raw 50-states CSV.
func BenchmarkAutoAnnotate(b *testing.B) {
	g, err := states.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(annotate.Advise(g, annotate.Config{}))
	}
	b.ReportMetric(float64(n), "proposals")
}

// BenchmarkSoftRefine (E14): the fuzzy fallback on the study's
// contradictory walnut ∧ NOT-nuts refinement.
func BenchmarkSoftRefine(b *testing.B) {
	g := recipes.Build(recipes.Config{Recipes: 600, Seed: 1})
	m := core.Open(g, core.Options{SoftEmptyResults: true})
	walnuts := query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Walnuts")},
	)
	nuts := query.PathProperty{
		Path:  []rdf.IRI{recipes.PropIngredient, recipes.PropGroup},
		Value: recipes.Group("Nuts"),
	}
	b.ResetTimer()
	var fallback int
	for i := 0; i < b.N; i++ {
		s := m.NewSession()
		s.Apply(blackboard.ReplaceQuery{Query: walnuts})
		s.Refine(nuts, blackboard.Exclude)
		fallback = len(s.Items())
	}
	b.ReportMetric(float64(fallback), "closestMatches")
}

// BenchmarkRankedItems (E15): reordering a keyword collection by text
// relevance with length bias.
func BenchmarkRankedItems(b *testing.B) {
	m := recipeMagnet()
	s := m.NewSession()
	s.Search("walnut")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RankedItems(core.RankOptions{LengthBias: 0.25})
	}
	b.ReportMetric(float64(len(s.Items())), "collection")
}

// BenchmarkQlangParse: parsing and resolving a structured query.
func BenchmarkQlangParse(b *testing.B) {
	m := recipeMagnet()
	r := qlang.NewResolver(m.Graph(), m.Schema())
	const src = `cuisine = Greek AND NOT ingredient.group = Nuts AND servings >= 4 AND directions : walnut`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qlang.Parse(src, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplainSimilarity: decomposing one similarity score.
func BenchmarkExplainSimilarity(b *testing.B) {
	m := recipeMagnet()
	rs := m.Graph().SubjectsOfType(recipes.ClassRecipe)
	a, c := rs[0], rs[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Model().ExplainSimilarity(a, c, 8)
	}
}

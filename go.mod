module magnet

go 1.22

// Segment equivalence: the promise of internal/segment is that a Magnet
// opened read-only from a compiled segment set is indistinguishable from
// one built in memory — byte-identical rendered output, not merely similar.
// These tests compile recipes and inbox sets into temp directories and
// replay the magnet-eval scenarios against both backings.
package magnet_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/dataload"
	"magnet/internal/datasets/inbox"
	"magnet/internal/datasets/recipes"
	"magnet/internal/facets"
	"magnet/internal/query"
	"magnet/internal/render"
)

// openBoth builds the dataset in memory and compiles + reopens it as a
// segment set, returning both Magnets. The segment set lives in a test
// temp dir; both instances are closed with the test.
func openBoth(t *testing.T, spec dataload.Spec) (mem, seg *core.Magnet) {
	t.Helper()
	g, allSubjects, err := dataload.Load(spec)
	if err != nil {
		t.Fatalf("load %s: %v", spec.Dataset, err)
	}
	mem = core.Open(g, core.Options{IndexAllSubjects: allSubjects})
	t.Cleanup(mem.Close)

	dir := t.TempDir()
	man, err := mem.WriteSegments(dir, spec.Name(), spec.Params())
	if err != nil {
		t.Fatalf("WriteSegments: %v", err)
	}
	if man.Dataset != spec.Name() {
		t.Fatalf("manifest dataset = %q, want %q", man.Dataset, spec.Name())
	}
	seg, err = core.OpenSegments(dir, core.Options{})
	if err != nil {
		t.Fatalf("OpenSegments: %v", err)
	}
	t.Cleanup(seg.Close)
	if err := seg.Segments().Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return mem, seg
}

// renderScenario runs one navigation and renders everything the eval
// figures render: the pane, the item collection, and the facet overview.
func renderScenario(m *core.Magnet, q query.Query) string {
	var buf bytes.Buffer
	s := m.NewSession()
	if err := s.Apply(blackboard.ReplaceQuery{Query: q}); err != nil {
		return "apply error: " + err.Error()
	}
	render.Pane(&buf, s.Pane(), false)
	buf.WriteByte('\n')
	render.Collection(&buf, m.Graph(), s.Items(), 8)
	buf.WriteByte('\n')
	render.Overview(&buf, s.Overview(6), len(s.Items()))
	return buf.String()
}

func TestSegmentEquivalenceRecipes(t *testing.T) {
	mem, seg := openBoth(t, dataload.Spec{Dataset: "recipes", Recipes: 200, Seed: 1})

	queries := map[string]query.Query{
		// Figure 1: refined pane.
		"fig1": query.NewQuery(
			query.TypeIs(recipes.ClassRecipe),
			query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
			query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Parsley")},
		),
		// Figure 2: unrefined overview of the whole collection.
		"fig2": query.NewQuery(query.TypeIs(recipes.ClassRecipe)),
	}
	for name, q := range queries {
		want := renderScenario(mem, q)
		got := renderScenario(seg, q)
		if got != want {
			t.Errorf("%s: segment-backed render differs from in-memory\n%s", name, firstDiff(want, got))
		}
	}
	if mem.NumItems() != seg.NumItems() {
		t.Errorf("NumItems: mem=%d seg=%d", mem.NumItems(), seg.NumItems())
	}
}

func TestSegmentEquivalenceInbox(t *testing.T) {
	mem, seg := openBoth(t, dataload.Spec{Dataset: "inbox"})

	q := query.NewQuery(query.Or{Ps: []query.Predicate{
		query.TypeIs(inbox.ClassMessage), query.TypeIs(inbox.ClassNewsItem),
	}})
	want := renderScenario(mem, q)
	got := renderScenario(seg, q)
	if got != want {
		t.Errorf("fig6: segment-backed render differs from in-memory\n%s", firstDiff(want, got))
	}

	// Figure 5's range widget: histogram over the sent date.
	renderHist := func(m *core.Magnet) string {
		var buf bytes.Buffer
		s := m.NewSession()
		if err := s.Apply(blackboard.ReplaceQuery{Query: q}); err != nil {
			t.Fatalf("apply: %v", err)
		}
		h, ok := facets.NumericHistogram(m.Graph(), s.Items(), inbox.PropSent, 24)
		if !ok {
			t.Fatal("no sent-date histogram")
		}
		render.Histogram(&buf, "sent", h)
		span := h.Max - h.Min
		lo, hi := h.Min+span/3, h.Min+2*span/3
		s.ApplyRange(inbox.PropSent, &lo, &hi)
		render.Collection(&buf, m.Graph(), s.Items(), 8)
		return buf.String()
	}
	if want, got := renderHist(mem), renderHist(seg); got != want {
		t.Errorf("fig5: segment-backed render differs from in-memory\n%s", firstDiff(want, got))
	}
}

// TestSegmentReadOnly: mutation of a segment-backed instance must panic
// loudly rather than corrupt shared mapped state.
func TestSegmentReadOnly(t *testing.T) {
	_, seg := openBoth(t, dataload.Spec{Dataset: "recipes", Recipes: 50, Seed: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("IndexItem on a segment-backed Magnet did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "read-only") {
			t.Fatalf("panic message %v does not mention read-only", r)
		}
	}()
	seg.Reindex()
}

// firstDiff locates the first differing line of two renders, with context.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  mem: %s\n  seg: %s", i+1, w, g)
		}
	}
	return "(lengths differ only)"
}

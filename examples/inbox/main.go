// Inbox example: the paper's Figure 6 — navigating an e-mail inbox that
// mixes messages with subscription news items, with the body-composition
// annotation surfacing second-level attributes and a date-range widget over
// sent dates (Figure 5). Run:
//
//	go run ./examples/inbox
package main

import (
	"fmt"
	"os"
	"time"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/inbox"
	"magnet/internal/query"
	"magnet/internal/render"
)

// apply performs a navigation action, aborting the run on failure: every
// step below depends on the resulting view.
func apply(s *core.Session, a blackboard.Action) {
	if err := s.Apply(a); err != nil {
		fmt.Fprintf(os.Stderr, "apply: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	g := inbox.Build(inbox.Config{})
	m := core.Open(g, core.Options{})
	s := m.NewSession()

	// View the whole inbox: both document types.
	apply(s, blackboard.ReplaceQuery{Query: query.NewQuery(query.Or{Ps: []query.Predicate{
		query.TypeIs(inbox.ClassMessage),
		query.TypeIs(inbox.ClassNewsItem),
	}})})
	fmt.Println("=== Inbox (Figure 6) ===")
	render.Collection(os.Stdout, g, s.Items(), 8)
	fmt.Println()
	render.Pane(os.Stdout, s.Pane(), false)

	// The range widget over sent dates (Figure 5): show the histogram, then
	// select July 2003.
	for _, sg := range s.Board().Suggestions() {
		if act, ok := sg.Action.(blackboard.ShowRange); ok && act.Prop == inbox.PropSent {
			fmt.Println("\n=== Sent-date range widget (Figure 5) ===")
			render.Histogram(os.Stdout, "sent", act.Histogram)
		}
	}
	july := time.Date(2003, 7, 1, 0, 0, 0, 0, time.UTC)
	august := time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)
	before := len(s.Items())
	lo, hi := float64(july.Unix()), float64(august.Unix())
	s.ApplyRange(inbox.PropSent, &lo, &hi)
	fmt.Printf("\nJuly 2003 selection: %d → %d messages\n", before, len(s.Items()))

	// Keyword refinement within the window.
	s.SearchWithin("seminar")
	fmt.Printf("... mentioning 'seminar': %d\n", len(s.Items()))
	render.Collection(os.Stdout, g, s.Items(), 5)

	// Open one message and look at its composed body attributes.
	if items := s.Items(); len(items) > 0 {
		fmt.Println()
		render.Item(os.Stdout, g, items[0])
	}
}

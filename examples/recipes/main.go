// Recipes example: the paper's §3 walkthrough on the recipe corpus —
// navigate to Greek recipes with parsley (Figure 1), inspect the facet
// overview (Figure 2), build the §3.3 compound "dairy or vegetables"
// refinement, and run the walnut-allergy flow from the user study. Run:
//
//	go run ./examples/recipes
package main

import (
	"fmt"
	"os"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/recipes"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/render"
)

// apply performs a navigation action, aborting the run on failure: every
// step below depends on the resulting view.
func apply(s *core.Session, a blackboard.Action) {
	if err := s.Apply(a); err != nil {
		fmt.Fprintf(os.Stderr, "apply: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	g := recipes.Build(recipes.Config{Recipes: 2000})
	m := core.Open(g, core.Options{})
	s := m.NewSession()

	// Figure 1: type=Recipe ∧ cuisine=Greek ∧ ingredient=Parsley.
	apply(s, blackboard.ReplaceQuery{Query: query.NewQuery(
		query.TypeIs(recipes.ClassRecipe),
		query.Property{Prop: recipes.PropCuisine, Value: recipes.Cuisine("Greek")},
		query.Property{Prop: recipes.PropIngredient, Value: recipes.Ingredient("Parsley")},
	)})
	fmt.Println("=== Figure 1 walkthrough: Greek recipes with parsley ===")
	render.Collection(os.Stdout, g, s.Items(), 6)
	fmt.Println()
	render.Pane(os.Stdout, s.Pane(), false)

	// Figure 2: the large-collection overview.
	apply(s, blackboard.ReplaceQuery{Query: query.NewQuery(query.TypeIs(recipes.ClassRecipe))})
	fmt.Println("\n=== Figure 2: facet overview of all recipes ===")
	render.Overview(os.Stdout, s.Overview(4), len(s.Items()))

	// §3.3 power users: "only those items ... that either have a dairy
	// product or a vegetable in them" — a compound OR refinement over the
	// composed ingredient·group axis.
	dairyOrVeg := query.Or{Ps: []query.Predicate{
		query.PathProperty{Path: []rdf.IRI{recipes.PropIngredient, recipes.PropGroup}, Value: recipes.Group("Dairy")},
		query.PathProperty{Path: []rdf.IRI{recipes.PropIngredient, recipes.PropGroup}, Value: recipes.Group("Vegetables")},
	}}
	before := len(s.Items())
	s.Refine(dairyOrVeg, blackboard.Filter)
	fmt.Printf("\n=== §3.3 compound refinement: dairy OR vegetables: %d → %d recipes ===\n",
		before, len(s.Items()))

	// The study's walnut flow: a walnut recipe, its similar recipes, nuts
	// excluded.
	walnutRecipes := g.Subjects(recipes.PropIngredient, recipes.Ingredient("Walnuts"))
	target := walnutRecipes[0]
	fmt.Printf("\n=== Walnut-allergy flow from %q ===\n", g.Label(target))
	s.OpenItem(target)
	for _, sg := range s.Board().Suggestions() {
		if sg.Group == "Similar by Content" {
			apply(s, sg.Action)
			break
		}
	}
	fmt.Printf("similar items: %d\n", len(s.Items()))
	s.Refine(query.PathProperty{
		Path:  []rdf.IRI{recipes.PropIngredient, recipes.PropGroup},
		Value: recipes.Group("Nuts"),
	}, blackboard.Exclude)
	fmt.Printf("after excluding the Nuts group: %d\n", len(s.Items()))
	render.Collection(os.Stdout, g, s.Items(), 5)
}

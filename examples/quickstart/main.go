// Quickstart: build a tiny semistructured repository by hand, open Magnet
// over it, and navigate — keyword search, refinement suggestions, and
// similarity. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/render"
)

const ns = "http://example.org/books#"

func main() {
	g := rdf.NewGraph()

	class := rdf.IRI(ns + "Book")
	author := rdf.IRI(ns + "author")
	subject := rdf.IRI(ns + "subject")
	title := rdf.DCTitle

	add := func(id, titleText string, by rdf.IRI, topics ...rdf.IRI) {
		b := rdf.IRI(ns + id)
		g.Add(b, rdf.Type, class)
		g.Add(b, title, rdf.NewString(titleText))
		g.Add(b, author, by)
		for _, t := range topics {
			g.Add(b, subject, t)
		}
	}
	james := rdf.IRI(ns + "henry-james")
	g.Add(james, rdf.Label, rdf.NewString("Henry James"))
	other := rdf.IRI(ns + "william-gibson")
	g.Add(other, rdf.Label, rdf.NewString("William Gibson"))
	fiction := rdf.IRI(ns + "Fiction")
	g.Add(fiction, rdf.Label, rdf.NewString("Fiction"))
	biography := rdf.IRI(ns + "Biography")
	g.Add(biography, rdf.Label, rdf.NewString("Biography"))

	// The paper's intro example: books *about* James versus books *by*
	// James — structure makes the distinction expressible.
	add("turn-of-the-screw", "The Turn of the Screw", james, fiction)
	add("portrait-of-a-lady", "The Portrait of a Lady", james, fiction)
	add("life-of-henry-james", "A Life of Henry James", other, biography)
	add("neuromancer", "Neuromancer", other, fiction)

	m := core.Open(g, core.Options{})
	s := m.NewSession()

	// 1. Keyword search, "the least cognitive effort" starting point: all
	//    books mentioning James anywhere.
	s.Search("james")
	fmt.Println("Keyword search: james")
	render.Collection(os.Stdout, g, s.Items(), 10)

	// 2. Add the structured constraint distinguishing by-James from
	//    about-James.
	s.Refine(query.Property{Prop: author, Value: james}, blackboard.Filter)
	fmt.Println("\nRefined: author = Henry James")
	render.Collection(os.Stdout, g, s.Items(), 10)

	// 3. The navigation pane with advisor suggestions.
	fmt.Println()
	render.Pane(os.Stdout, s.Pane(), false)

	// 4. Fuzzy similarity: other books like 'The Turn of the Screw'.
	turn := rdf.IRI(ns + "turn-of-the-screw")
	fmt.Println("\nSimilar to The Turn of the Screw:")
	for _, sc := range m.Model().SimilarToItem(turn, 3) {
		fmt.Printf("  %.3f %s\n", sc.Score, g.Label(sc.Item))
	}
}

// States example: the paper's Figure 7 → Figure 8 annotation story on the
// real 50-states data. As imported from CSV the dataset has raw identifiers
// and stringly values; Magnet still finds the 'cardinal' pattern. Adding a
// label and an integer value-type annotation upgrades the interface: labels
// everywhere and a range widget exposing Alaska as the area outlier. Run:
//
//	go run ./examples/states
package main

import (
	"fmt"
	"os"

	"magnet/internal/blackboard"
	"magnet/internal/core"
	"magnet/internal/datasets/states"
	"magnet/internal/facets"
	"magnet/internal/query"
	"magnet/internal/rdf"
	"magnet/internal/render"
)

// apply performs a navigation action, aborting the run on failure: every
// step below depends on the resulting view.
func apply(s *core.Session, a blackboard.Action) {
	if err := s.Apply(a); err != nil {
		fmt.Fprintf(os.Stderr, "apply: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	// --- As given (Figure 7): no labels, everything a string. ---
	g, err := states.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "states: %v\n", err)
		os.Exit(1)
	}
	m := core.Open(g, core.Options{IndexAllSubjects: true})
	s := m.NewSession()

	fmt.Println("=== Figure 7: the CSV as given ===")
	render.Overview(os.Stdout, s.Overview(3), len(s.Items()))

	// Click the 'cardinal' word suggestion Magnet surfaces.
	for _, sg := range s.Board().Suggestions() {
		if act, ok := sg.Action.(blackboard.Refine); ok {
			if tm, ok := act.Add.(query.TermMatch); ok && tm.Display == "cardinal" {
				apply(s, sg.Action)
				break
			}
		}
	}
	fmt.Printf("\nStates with 'cardinal' in their bird names: %d\n", len(s.Items()))
	render.Collection(os.Stdout, g, s.Items(), 10)

	// --- Annotated (Figure 8). ---
	states.Annotate(g)
	m = core.Open(g, core.Options{IndexAllSubjects: true})
	s = m.NewSession()

	fmt.Println("\n=== Figure 8: after label + integer annotations ===")
	render.Overview(os.Stdout, s.Overview(3), len(s.Items()))

	for _, sg := range s.Board().Suggestions() {
		if act, ok := sg.Action.(blackboard.ShowRange); ok && act.Prop == states.PropArea {
			fmt.Println()
			render.Histogram(os.Stdout, "Area (sq mi)", act.Histogram)
		}
	}
	outliers := facets.Outliers(g, m.Items(), states.PropArea, 3)
	for _, o := range outliers {
		name, _ := g.Object(o, states.PropName)
		fmt.Printf("area outlier: %s\n", name.(rdf.Literal).Lexical)
	}

	// Range query: the big western states.
	lo := 100000.0
	s.ApplyRange(states.PropArea, &lo, nil)
	fmt.Printf("\nStates over 100,000 sq mi: %d\n", len(s.Items()))
	render.Collection(os.Stdout, g, s.Items(), 10)
}
